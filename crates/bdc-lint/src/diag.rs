//! The unified diagnostic model: rules, severities, locations, reports.

use std::fmt;

/// How bad a finding is.
///
/// `Error` means a hand-off invariant of the Figure-10 flow is broken and
/// downstream numbers (STA, depth/width optima) would be silently wrong;
/// `Warning` means the artifact is legal but suspicious; `Info` records a
/// condition downstream tools handle but reports should surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Surfaced in reports only.
    Info,
    /// Suspicious but not flow-breaking.
    Warning,
    /// Breaks a flow invariant; results downstream are untrustworthy.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        f.write_str(s)
    }
}

/// Every rule the analyzer knows, across all front-ends.
///
/// Netlist rules are `NL*`, library rules `LB*`, device rules `DV*`. The
/// catalogue (with rationale and hints) is documented in `DESIGN.md`
/// §"Static analysis".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// NL001: a net is read (gate/flop input or primary output) but nothing
    /// drives it.
    UndrivenNet,
    /// NL002: a net has more than one driver.
    MultipleDrivers,
    /// NL003: a gate reads a net driven by a *later* gate — the netlist is
    /// not in topological order (a combinational loop or a broken rewrite),
    /// so the forward-pass STA would read stale arrivals.
    NonTopological,
    /// NL004: a gate's output cone reaches no primary output or flop — dead
    /// logic inflating area and leakage.
    DeadGate,
    /// NL005: a net was allocated but is neither driven nor read.
    FloatingNet,
    /// NL006: a primary input that nothing reads.
    UnusedInput,
    /// NL007: fanout above `StaConfig::max_fanout`; STA models a buffer
    /// tree, which inflates the stage's delay floor.
    FanoutOverMax,
    /// NL008: a net's capacitive load lies beyond the driving cell's
    /// characterized NLDM load axis — delay is extrapolated, not measured.
    LoadBeyondTable,
    /// NL009: a propagated input slew lies beyond the characterized NLDM
    /// slew axis.
    SlewBeyondTable,
    /// NL010: a flop whose Q is neither read nor a primary output.
    DeadFlop,
    /// NL011: the netlist uses 3-input cells although the target library's
    /// characterization prefers 2-input decomposition (§5.5) — it was not
    /// remapped for this library.
    UnmappedThreeInput,
    /// NL012: a flop whose D cone depends on no primary input or flop —
    /// the register latches a constant.
    ConstantFlop,
    /// LB001: delay does not grow monotonically along the NLDM load axis —
    /// the fitted table left its physical range.
    NonMonotoneDelay,
    /// LB002: a negative delay or slew entry in an NLDM table.
    NegativeDelay,
    /// LB003: supply rails are inconsistent (VDD ≤ VSS or VDD ≤ 0).
    RailOrder,
    /// LB004: rails violate the process convention (pseudo-E organic needs
    /// VSS < 0; CMOS expects VSS = 0).
    RailConvention,
    /// LB005: a non-physical cell scalar (area/input-cap ≤ 0, negative
    /// leakage or switching energy).
    NonPositiveCellScalar,
    /// LB006: inconsistent DFF timing (setup/clk→Q ≤ 0 or hold < 0).
    BadDffTiming,
    /// LB007: a degenerate 1×1 NLDM table — load/slew dependence is not
    /// characterized (synthetic libraries).
    DegenerateTable,
    /// LB008: the rise/fall/slew tables of one cell disagree on axes.
    AxisMismatch,
    /// LB009: negative ∂delay/∂load (drive resistance) at the table centre.
    NegativeDriveResistance,
    /// DV001: non-positive device geometry (W, L, C_i) or negative overlap.
    BadGeometry,
    /// DV002: mobility prefactor outside the physically plausible window.
    MobilityOutOfRange,
    /// DV003: threshold voltage magnitude negative or implausibly large.
    VtOutOfRange,
    /// DV004: subthreshold ideality below 1 (sub-physical) or implausibly
    /// large.
    BadSubthresholdSlope,
    /// DV005: off-current floor non-positive or so large the on/off ratio
    /// collapses.
    BadOffCurrent,
    /// D001: `HashMap`/`HashSet` in a render/serve/cache path — iteration
    /// order is seeded per-process, so any order reaching rendered bytes is
    /// nondeterministic across runs.
    HashOrderHazard,
    /// D002: ambient time (`SystemTime::now`/`Instant::now`) in a path whose
    /// output is cached or rendered — wall-clock values leaking into
    /// artifacts break byte-identity.
    AmbientTime,
    /// D003: explicit `RandomState` — a per-process random hasher seed in a
    /// determinism-sensitive path.
    RandomStateHazard,
    /// D004: thread-id dependence (`thread::current().id()`) — output that
    /// varies with scheduler assignment.
    ThreadIdHazard,
    /// D005: `unwrap()`/`expect(` in a `bdc-serve` request path — a panic
    /// there kills a connection worker instead of returning a 4xx/5xx.
    ServeUnwrap,
    /// D006: ambient environment read (`env::var`/`env::var_os`) in a
    /// render path — configuration reaching rendered bytes must flow
    /// through the cache key, not `std::env`.
    AmbientEnv,
    /// D007: a malformed suppression comment (a `bdc-lint:` allow
    /// directive with an unknown rule id or a missing reason); silent
    /// typos would mask real findings.
    BadAllowDirective,
    /// PG001: two registry nodes share an id.
    DuplicateNodeId,
    /// PG002: two registry nodes map to the same cache key at some budget —
    /// one node's bytes would be served for the other.
    CacheKeyCollision,
    /// PG003: an input that reaches a node's render fn does not perturb its
    /// cache key — stale bytes would be served when that input changes.
    UnderKeyedNode,
    /// PG004: a node claims a driver name outside the canonical catalogue.
    UnknownDriver,
    /// PG005: a canonical driver is orphaned (no node claims it) or claimed
    /// by more than one node.
    DriverCoverage,
    /// PG006: a node's declared library deps disagree with the reads
    /// observed during an audited render.
    DepMismatch,
    /// PG007: the plan graph has a dependency cycle.
    PlanCycle,
    /// PG008: the fine-grained stage graph (device → cell → library →
    /// synthesis) has a cycle — incremental invalidation would never
    /// terminate.
    StageCycle,
    /// PG009: a stage key is insensitive to an input that reaches it (or
    /// sensitive to one that must not) — a parameter change would reuse
    /// stale stage artifacts, or invalidate stages outside its cone.
    StageKeyInsensitive,
    /// PG010: two distinct stages share a content key at some parameter
    /// point — one stage's bytes would be served for the other.
    StageKeyCollision,
}

impl Rule {
    /// Stable rule identifier, e.g. `NL001`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::UndrivenNet => "NL001",
            Rule::MultipleDrivers => "NL002",
            Rule::NonTopological => "NL003",
            Rule::DeadGate => "NL004",
            Rule::FloatingNet => "NL005",
            Rule::UnusedInput => "NL006",
            Rule::FanoutOverMax => "NL007",
            Rule::LoadBeyondTable => "NL008",
            Rule::SlewBeyondTable => "NL009",
            Rule::DeadFlop => "NL010",
            Rule::UnmappedThreeInput => "NL011",
            Rule::ConstantFlop => "NL012",
            Rule::NonMonotoneDelay => "LB001",
            Rule::NegativeDelay => "LB002",
            Rule::RailOrder => "LB003",
            Rule::RailConvention => "LB004",
            Rule::NonPositiveCellScalar => "LB005",
            Rule::BadDffTiming => "LB006",
            Rule::DegenerateTable => "LB007",
            Rule::AxisMismatch => "LB008",
            Rule::NegativeDriveResistance => "LB009",
            Rule::BadGeometry => "DV001",
            Rule::MobilityOutOfRange => "DV002",
            Rule::VtOutOfRange => "DV003",
            Rule::BadSubthresholdSlope => "DV004",
            Rule::BadOffCurrent => "DV005",
            Rule::HashOrderHazard => "D001",
            Rule::AmbientTime => "D002",
            Rule::RandomStateHazard => "D003",
            Rule::ThreadIdHazard => "D004",
            Rule::ServeUnwrap => "D005",
            Rule::AmbientEnv => "D006",
            Rule::BadAllowDirective => "D007",
            Rule::DuplicateNodeId => "PG001",
            Rule::CacheKeyCollision => "PG002",
            Rule::UnderKeyedNode => "PG003",
            Rule::UnknownDriver => "PG004",
            Rule::DriverCoverage => "PG005",
            Rule::DepMismatch => "PG006",
            Rule::PlanCycle => "PG007",
            Rule::StageCycle => "PG008",
            Rule::StageKeyInsensitive => "PG009",
            Rule::StageKeyCollision => "PG010",
        }
    }

    /// Parses a stable rule id (e.g. `D001`) back to its rule, for
    /// `bdc-lint:` allow directives.
    pub fn from_id(id: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.id() == id)
    }

    /// The severity findings of this rule carry.
    pub fn severity(self) -> Severity {
        match self {
            Rule::UndrivenNet
            | Rule::MultipleDrivers
            | Rule::NonTopological
            | Rule::NegativeDelay
            | Rule::RailOrder
            | Rule::NonPositiveCellScalar
            | Rule::BadDffTiming
            | Rule::BadGeometry => Severity::Error,
            Rule::DeadGate
            | Rule::FloatingNet
            | Rule::UnusedInput
            | Rule::LoadBeyondTable
            | Rule::SlewBeyondTable
            | Rule::DeadFlop
            | Rule::ConstantFlop
            | Rule::NonMonotoneDelay
            | Rule::RailConvention
            | Rule::AxisMismatch
            | Rule::NegativeDriveResistance
            | Rule::MobilityOutOfRange
            | Rule::VtOutOfRange
            | Rule::BadSubthresholdSlope
            | Rule::BadOffCurrent => Severity::Warning,
            Rule::FanoutOverMax | Rule::UnmappedThreeInput | Rule::DegenerateTable => {
                Severity::Info
            }
            // Determinism hazards: everything that can silently corrupt
            // byte-identity or kill a serve worker is Deny (Error); ambient
            // env reads outside infra code are suspicious but reviewable.
            Rule::HashOrderHazard
            | Rule::AmbientTime
            | Rule::RandomStateHazard
            | Rule::ThreadIdHazard
            | Rule::ServeUnwrap
            | Rule::BadAllowDirective => Severity::Error,
            Rule::AmbientEnv => Severity::Warning,
            // Plan-graph soundness: all Deny — a collision or under-keyed
            // node means the artifact cache serves wrong bytes.
            Rule::DuplicateNodeId
            | Rule::CacheKeyCollision
            | Rule::UnderKeyedNode
            | Rule::UnknownDriver
            | Rule::DriverCoverage
            | Rule::DepMismatch
            | Rule::PlanCycle
            | Rule::StageCycle
            | Rule::StageKeyInsensitive
            | Rule::StageKeyCollision => Severity::Error,
        }
    }
}

/// Every rule, in catalogue order — the source of truth for id lookups and
/// exhaustiveness tests.
pub const ALL_RULES: &[Rule] = &[
    Rule::UndrivenNet,
    Rule::MultipleDrivers,
    Rule::NonTopological,
    Rule::DeadGate,
    Rule::FloatingNet,
    Rule::UnusedInput,
    Rule::FanoutOverMax,
    Rule::LoadBeyondTable,
    Rule::SlewBeyondTable,
    Rule::DeadFlop,
    Rule::UnmappedThreeInput,
    Rule::ConstantFlop,
    Rule::NonMonotoneDelay,
    Rule::NegativeDelay,
    Rule::RailOrder,
    Rule::RailConvention,
    Rule::NonPositiveCellScalar,
    Rule::BadDffTiming,
    Rule::DegenerateTable,
    Rule::AxisMismatch,
    Rule::NegativeDriveResistance,
    Rule::BadGeometry,
    Rule::MobilityOutOfRange,
    Rule::VtOutOfRange,
    Rule::BadSubthresholdSlope,
    Rule::BadOffCurrent,
    Rule::HashOrderHazard,
    Rule::AmbientTime,
    Rule::RandomStateHazard,
    Rule::ThreadIdHazard,
    Rule::ServeUnwrap,
    Rule::AmbientEnv,
    Rule::BadAllowDirective,
    Rule::DuplicateNodeId,
    Rule::CacheKeyCollision,
    Rule::UnderKeyedNode,
    Rule::UnknownDriver,
    Rule::DriverCoverage,
    Rule::DepMismatch,
    Rule::PlanCycle,
    Rule::StageCycle,
    Rule::StageKeyInsensitive,
    Rule::StageKeyCollision,
];

/// Where a finding is anchored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Location {
    /// A net id in the linted netlist.
    Net(usize),
    /// An index into `Netlist::gates()`.
    Gate(usize),
    /// An index into `Netlist::flops()`.
    Flop(usize),
    /// A library cell by canonical name.
    Cell(&'static str),
    /// The library (rails, wire, DFF timing).
    Library,
    /// A device-model parameter by name.
    Param(&'static str),
    /// A source location in a workspace file (determinism auditor).
    Source {
        /// Workspace-relative path.
        file: String,
        /// 1-based line number.
        line: usize,
    },
    /// A registry node by id (plan-graph analysis).
    Node(String),
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Net(n) => write!(f, "net {n}"),
            Location::Gate(g) => write!(f, "gate {g}"),
            Location::Flop(i) => write!(f, "flop {i}"),
            Location::Cell(c) => write!(f, "cell {c}"),
            Location::Library => write!(f, "library"),
            Location::Param(p) => write!(f, "param {p}"),
            Location::Source { file, line } => write!(f, "{file}:{line}"),
            Location::Node(id) => write!(f, "node {id}"),
        }
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: Rule,
    /// Its severity (the rule's default).
    pub severity: Severity,
    /// Where it fired.
    pub location: Location,
    /// What was observed.
    pub message: String,
    /// How to fix it, when the analyzer has a suggestion.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// Builds a finding with the rule's default severity.
    pub fn new(rule: Rule, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            severity: rule.severity(),
            location,
            message: message.into(),
            hint: None,
        }
    }

    /// Attaches a fix hint.
    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity,
            self.rule.id(),
            self.location,
            self.message
        )?;
        if let Some(h) = &self.hint {
            write!(f, " (hint: {h})")?;
        }
        Ok(())
    }
}

/// All findings from linting one artifact.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// What was linted (netlist or library name).
    pub subject: String,
    /// Findings in detection order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty report for `subject`.
    pub fn new(subject: impl Into<String>) -> Self {
        LintReport {
            subject: subject.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Records a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Merges another report's findings (subject kept from `self`).
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Findings at exactly `severity`.
    pub fn at(&self, severity: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(move |d| d.severity == severity)
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.at(severity).count()
    }

    /// True when no `Error`-severity finding is present.
    pub fn is_clean(&self) -> bool {
        self.count(Severity::Error) == 0
    }

    /// The worst severity present, if any finding exists.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// One-line summary, e.g. `alu: 0 errors, 3 warnings, 12 notes`.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} errors, {} warnings, {} notes",
            self.subject,
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        )
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.summary())?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_error_worst() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn rule_ids_are_unique() {
        let mut ids: Vec<_> = ALL_RULES.iter().map(|r| r.id()).collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate rule id");
    }

    #[test]
    fn rule_from_id_round_trips() {
        for &r in ALL_RULES {
            assert_eq!(Rule::from_id(r.id()), Some(r), "{}", r.id());
        }
        assert_eq!(Rule::from_id("ZZ999"), None);
    }

    #[test]
    fn source_and_node_locations_render() {
        let d = Diagnostic::new(
            Rule::HashOrderHazard,
            Location::Source {
                file: "crates/x/src/lib.rs".into(),
                line: 7,
            },
            "HashMap in render path",
        );
        assert!(d.to_string().contains("[D001] crates/x/src/lib.rs:7"));
        let d = Diagnostic::new(Rule::UnderKeyedNode, Location::Node("fig03".into()), "m");
        assert!(d.to_string().contains("[PG003] node fig03"));
    }

    #[test]
    fn report_counts_and_summary() {
        let mut r = LintReport::new("x");
        assert!(r.is_clean());
        assert_eq!(r.max_severity(), None);
        r.push(Diagnostic::new(
            Rule::UndrivenNet,
            Location::Net(3),
            "undriven",
        ));
        r.push(Diagnostic::new(Rule::DeadGate, Location::Gate(1), "dead").with_hint("remove it"));
        assert!(!r.is_clean());
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.count(Severity::Warning), 1);
        assert_eq!(r.max_severity(), Some(Severity::Error));
        assert!(r.summary().contains("1 errors"));
        let text = r.to_string();
        assert!(text.contains("[NL001] net 3"));
        assert!(text.contains("hint: remove it"));
    }
}
