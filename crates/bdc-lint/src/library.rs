//! Library- and device-level lint.
//!
//! Fitted device models and characterized libraries go subtly out of
//! physical range long before they crash anything (cf. Krammer et al. on
//! OTFT compact models): a non-monotone NLDM table or a negative rail
//! yields plausible-looking but wrong depth/width optima. These rules
//! check the physical sanity of `CellLibrary` and `TftParams` artifacts at
//! the flow hand-offs.

use bdc_cells::{CellLibrary, NldmTable, ProcessKind};
use bdc_device::TftParams;

use crate::diag::{Diagnostic, LintReport, Location, Rule};

/// Relative wiggle allowed before a delay decrease along the load axis is
/// reported — characterization noise produces harmless micro-dips.
const MONOTONE_TOLERANCE: f64 = 1.0e-6;

/// Runs every library-level rule over `lib`.
pub fn lint_library(lib: &CellLibrary) -> LintReport {
    let mut report = LintReport::new(lib.name.clone());

    // ---- LB003/LB004 rails -------------------------------------------------
    if lib.vdd <= 0.0 || lib.vdd <= lib.vss {
        report.push(
            Diagnostic::new(
                Rule::RailOrder,
                Location::Library,
                format!(
                    "inconsistent rails: VDD = {} V, VSS = {} V",
                    lib.vdd, lib.vss
                ),
            )
            .with_hint("VDD must be positive and above VSS"),
        );
    } else {
        match lib.process {
            ProcessKind::Organic if lib.vss >= 0.0 => {
                report.push(
                    Diagnostic::new(
                        Rule::RailConvention,
                        Location::Library,
                        format!("organic pseudo-E library with VSS = {} V", lib.vss),
                    )
                    .with_hint(
                        "unipolar p-type pseudo-E logic needs a negative bias rail (§4.3.3)",
                    ),
                );
            }
            ProcessKind::Silicon45 if lib.vss != 0.0 => {
                report.push(
                    Diagnostic::new(
                        Rule::RailConvention,
                        Location::Library,
                        format!("CMOS library with VSS = {} V", lib.vss),
                    )
                    .with_hint("CMOS libraries here model VSS as ground"),
                );
            }
            _ => {}
        }
    }

    // ---- LB006 DFF timing --------------------------------------------------
    let dff = lib.dff;
    if dff.setup <= 0.0 || dff.clk_to_q <= 0.0 || dff.hold < 0.0 {
        report.push(
            Diagnostic::new(
                Rule::BadDffTiming,
                Location::Library,
                format!(
                    "DFF timing out of range: setup {:.3e} s, hold {:.3e} s, clk→Q {:.3e} s",
                    dff.setup, dff.hold, dff.clk_to_q
                ),
            )
            .with_hint("setup and clk→Q must be positive, hold non-negative"),
        );
    }

    // ---- per-cell rules ----------------------------------------------------
    for cell in lib.cells() {
        let name = cell.kind.name();
        if cell.area <= 0.0 || cell.input_cap <= 0.0 {
            report.push(Diagnostic::new(
                Rule::NonPositiveCellScalar,
                Location::Cell(name),
                format!(
                    "area {:.3e} µm², input cap {:.3e} F must be positive",
                    cell.area, cell.input_cap
                ),
            ));
        }
        if cell.leakage_w < 0.0 || cell.switching_energy < 0.0 {
            report.push(Diagnostic::new(
                Rule::NonPositiveCellScalar,
                Location::Cell(name),
                format!(
                    "leakage {:.3e} W and switching energy {:.3e} J must be non-negative",
                    cell.leakage_w, cell.switching_energy
                ),
            ));
        }

        let arcs: [(&str, &NldmTable); 3] = [
            ("delay_rise", &cell.timing.delay_rise),
            ("delay_fall", &cell.timing.delay_fall),
            ("out_slew", &cell.timing.out_slew),
        ];
        for (arc, table) in arcs {
            lint_table(name, arc, table, &mut report);
        }
        if cell.timing.delay_rise.slews() != cell.timing.delay_fall.slews()
            || cell.timing.delay_rise.loads() != cell.timing.delay_fall.loads()
            || cell.timing.delay_rise.slews() != cell.timing.out_slew.slews()
            || cell.timing.delay_rise.loads() != cell.timing.out_slew.loads()
        {
            report.push(
                Diagnostic::new(
                    Rule::AxisMismatch,
                    Location::Cell(name),
                    "rise/fall/slew arcs disagree on NLDM axes",
                )
                .with_hint("characterize all arcs of one cell on a shared slew × load grid"),
            );
        }
    }

    report
}

/// Table-level rules: LB001 monotonicity, LB002 sign, LB007 degeneracy,
/// LB009 drive resistance.
fn lint_table(cell: &'static str, arc: &str, table: &NldmTable, report: &mut LintReport) {
    if table.slews().len() < 2 && table.loads().len() < 2 {
        report.push(Diagnostic::new(
            Rule::DegenerateTable,
            Location::Cell(cell),
            format!("{arc}: degenerate 1×1 table; load/slew dependence uncharacterized"),
        ));
        return;
    }

    for (i, row) in table.values().iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if v < 0.0 {
                report.push(
                    Diagnostic::new(
                        Rule::NegativeDelay,
                        Location::Cell(cell),
                        format!("{arc}[{i}][{j}] = {v:.3e} s is negative"),
                    )
                    .with_hint("the fitted model left its physical range; re-characterize"),
                );
            }
        }
        // Delay must not shrink as load grows (same slew row).
        for j in 1..row.len() {
            let (lo, hi) = (row[j - 1], row[j]);
            if hi < lo * (1.0 - MONOTONE_TOLERANCE) {
                report.push(
                    Diagnostic::new(
                        Rule::NonMonotoneDelay,
                        Location::Cell(cell),
                        format!(
                            "{arc} row {i}: value drops from {lo:.3e} to {hi:.3e} as load grows"
                        ),
                    )
                    .with_hint("non-monotone fitted tables corrupt interpolation; re-characterize"),
                );
            }
        }
    }

    if table.loads().len() >= 2 && table.drive_resistance() < 0.0 {
        report.push(Diagnostic::new(
            Rule::NegativeDriveResistance,
            Location::Cell(cell),
            format!("{arc}: negative ∂delay/∂load at the table centre"),
        ));
    }
}

/// Physically plausible mobility window for the devices this repo models
/// (m²/V·s): from badly degraded organic films to beyond DNTT-class OTFTs.
/// Silicon MOSFETs are modeled by a different parameter set and are not
/// checked against this window.
const MOBILITY_RANGE: (f64, f64) = (1.0e-8, 1.0e-1);

/// Runs every device-level rule over `params`.
pub fn lint_device(params: &TftParams) -> LintReport {
    let mut report = LintReport::new("tft-params");

    if params.w <= 0.0 || params.l <= 0.0 || params.ci <= 0.0 || params.l_overlap < 0.0 {
        report.push(Diagnostic::new(
            Rule::BadGeometry,
            Location::Param("w/l/ci"),
            format!(
                "W = {:.3e} m, L = {:.3e} m, C_i = {:.3e} F/m², L_ov = {:.3e} m",
                params.w, params.l, params.ci, params.l_overlap
            ),
        ));
    }

    if params.mu0 <= 0.0 {
        report.push(Diagnostic::new(
            Rule::BadGeometry,
            Location::Param("mu0"),
            format!(
                "mobility prefactor {:.3e} m²/V·s must be positive",
                params.mu0
            ),
        ));
    } else if params.mu0 < MOBILITY_RANGE.0 || params.mu0 > MOBILITY_RANGE.1 {
        report.push(
            Diagnostic::new(
                Rule::MobilityOutOfRange,
                Location::Param("mu0"),
                format!(
                    "mobility {:.3e} m²/V·s outside the plausible OTFT window [{:.0e}, {:.0e}]",
                    params.mu0, MOBILITY_RANGE.0, MOBILITY_RANGE.1
                ),
            )
            .with_hint("check the fitted extraction; pentacene is ~1.6e-5, DNTT ~1.6e-4 m²/V·s"),
        );
    }

    if params.vt0 < 0.0 {
        report.push(
            Diagnostic::new(
                Rule::VtOutOfRange,
                Location::Param("vt0"),
                format!("threshold magnitude {:.2} V is negative", params.vt0),
            )
            .with_hint("vt0 holds the magnitude; polarity carries the sign"),
        );
    } else if params.vt0 > 10.0 {
        report.push(Diagnostic::new(
            Rule::VtOutOfRange,
            Location::Param("vt0"),
            format!(
                "threshold magnitude {:.2} V is implausibly large",
                params.vt0
            ),
        ));
    }

    if params.subthreshold_n < 1.0 || params.subthreshold_n > 30.0 {
        report.push(
            Diagnostic::new(
                Rule::BadSubthresholdSlope,
                Location::Param("subthreshold_n"),
                format!("ideality n = {:.2} outside [1, 30]", params.subthreshold_n),
            )
            .with_hint("n < 1 is sub-physical (60 mV/dec limit at room temperature)"),
        );
    }

    if params.i_off <= 0.0 {
        report.push(Diagnostic::new(
            Rule::BadOffCurrent,
            Location::Param("i_off"),
            format!("off-current floor {:.3e} A must be positive", params.i_off),
        ));
    } else if params.i_off > 1.0e-6 {
        report.push(
            Diagnostic::new(
                Rule::BadOffCurrent,
                Location::Param("i_off"),
                format!(
                    "off-current floor {:.3e} A collapses the on/off ratio",
                    params.i_off
                ),
            )
            .with_hint("the paper's device has on/off ≈ 10⁶ with I_off ≈ 2 pA"),
        );
    }

    report
}
