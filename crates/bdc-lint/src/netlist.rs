//! Gate-level lint over [`bdc_synth::gate::Netlist`].
//!
//! The rules mirror the invariants the synthesis/STA hand-off of the
//! paper's Figure-10 flow silently assumes: single-driver nets, topological
//! gate order, live logic, fanout within the synthesis constraint, and
//! operation inside the library's characterized NLDM grid.

use bdc_cells::{CellKind, CellLibrary};
use bdc_synth::gate::Netlist;
use bdc_synth::map::prefers_decomposition;
use bdc_synth::place::cell_of;
use bdc_synth::sta::StaConfig;
use bdc_synth::GateKind;

use crate::diag::{Diagnostic, LintReport, Location, Rule};

/// Relative tolerance before an off-grid load/slew is reported: tiny
/// extrapolations are numerically indistinguishable from the grid edge.
const AXIS_TOLERANCE: f64 = 1.0e-9;

/// How each net is driven, for the structural rules.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Driver {
    None,
    Input,
    Const,
    FlopQ(usize),
    Gate(usize),
}

/// Runs every gate-level rule over `netlist` against `lib` and `cfg`.
///
/// `cfg` supplies the max-fanout constraint and the placement model used to
/// estimate wire load (the same model STA uses, so NL008/NL009 flag
/// exactly the lookups STA would extrapolate).
pub fn lint_netlist(netlist: &Netlist, lib: &CellLibrary, cfg: &StaConfig) -> LintReport {
    let mut report = LintReport::new(netlist.name.clone());
    let n_nets = netlist.net_count();

    // ---- drivers and readers ----------------------------------------------
    let mut driver = vec![Driver::None; n_nets];
    let claim = |driver: &mut Vec<Driver>, report: &mut LintReport, net: usize, d: Driver| {
        if driver[net] == Driver::None {
            driver[net] = d;
        } else {
            let what = match d {
                Driver::Gate(g) => format!("gate {g}"),
                Driver::FlopQ(i) => format!("flop {i} Q"),
                Driver::Input => "primary input".to_string(),
                Driver::Const => "constant".to_string(),
                Driver::None => unreachable!(),
            };
            report.push(Diagnostic::new(
                Rule::MultipleDrivers,
                Location::Net(net),
                format!("net has multiple drivers; extra driver is {what}"),
            ));
        }
    };
    for &i in netlist.inputs() {
        claim(&mut driver, &mut report, i, Driver::Input);
    }
    let (c0, c1) = netlist.constants();
    for c in [c0, c1].into_iter().flatten() {
        claim(&mut driver, &mut report, c, Driver::Const);
    }
    for (fi, f) in netlist.flops().iter().enumerate() {
        claim(&mut driver, &mut report, f.q, Driver::FlopQ(fi));
    }
    for (gi, g) in netlist.gates().iter().enumerate() {
        claim(&mut driver, &mut report, g.output, Driver::Gate(gi));
    }

    let mut read = vec![false; n_nets];
    for g in netlist.gates() {
        for &i in &g.inputs {
            read[i] = true;
        }
    }
    for f in netlist.flops() {
        read[f.d] = true;
    }
    let mut is_output = vec![false; n_nets];
    for &o in netlist.outputs() {
        is_output[o] = true;
    }

    // ---- NL001 undriven, NL005 floating, NL006 unused input ---------------
    for net in 0..n_nets {
        match driver[net] {
            Driver::None if read[net] || is_output[net] => {
                report.push(
                    Diagnostic::new(
                        Rule::UndrivenNet,
                        Location::Net(net),
                        "net is read but never driven",
                    )
                    .with_hint("drive it with a gate, flop, constant or primary input"),
                );
            }
            Driver::None => {
                report.push(Diagnostic::new(
                    Rule::FloatingNet,
                    Location::Net(net),
                    "net is allocated but neither driven nor read",
                ));
            }
            Driver::Input if !read[net] && !is_output[net] => {
                let name = netlist.input_name(net).unwrap_or("?");
                report.push(Diagnostic::new(
                    Rule::UnusedInput,
                    Location::Net(net),
                    format!("primary input '{name}' is never read"),
                ));
            }
            _ => {}
        }
    }

    // ---- NL003 topological order ------------------------------------------
    // A net is available once its driver has been seen walking gates in
    // order; sources are available from the start.
    let mut available = vec![false; n_nets];
    for net in 0..n_nets {
        if matches!(
            driver[net],
            Driver::Input | Driver::Const | Driver::FlopQ(_)
        ) {
            available[net] = true;
        }
    }
    for (gi, g) in netlist.gates().iter().enumerate() {
        for &i in &g.inputs {
            if !available[i] && matches!(driver[i], Driver::Gate(_)) {
                let Driver::Gate(later) = driver[i] else {
                    unreachable!()
                };
                report.push(
                    Diagnostic::new(
                        Rule::NonTopological,
                        Location::Gate(gi),
                        format!("reads net {i}, driven by later gate {later} (combinational loop or broken rewrite)"),
                    )
                    .with_hint("netlists must stay in topological order; rebuild via the gate builders"),
                );
            }
        }
        available[g.output] = true;
    }

    // ---- NL004 dead gates, NL010 dead flops -------------------------------
    // Reverse reachability from the sinks (primary outputs and flop D pins).
    let mut live = vec![false; n_nets];
    for &o in netlist.outputs() {
        live[o] = true;
    }
    for f in netlist.flops() {
        live[f.d] = true;
    }
    for (gi, g) in netlist.gates().iter().enumerate().rev() {
        if live[g.output] {
            for &i in &g.inputs {
                live[i] = true;
            }
        } else {
            report.push(
                Diagnostic::new(
                    Rule::DeadGate,
                    Location::Gate(gi),
                    format!("{:?} output (net {}) reaches no primary output or flop", g.kind, g.output),
                )
                .with_hint("dead logic burns area and static power; remove it or mark its cone as an output"),
            );
        }
    }
    for (fi, f) in netlist.flops().iter().enumerate() {
        if !read[f.q] && !is_output[f.q] {
            report.push(Diagnostic::new(
                Rule::DeadFlop,
                Location::Flop(fi),
                format!("flop Q (net {}) is neither read nor a primary output", f.q),
            ));
        }
    }

    // ---- NL012 constant flops ---------------------------------------------
    // Forward dependence on any primary input or flop Q; gates are walked in
    // order, so this is exact for topological netlists.
    let mut dynamic = vec![false; n_nets];
    for net in 0..n_nets {
        dynamic[net] = matches!(driver[net], Driver::Input | Driver::FlopQ(_));
    }
    for g in netlist.gates() {
        if g.inputs.iter().any(|&i| dynamic[i]) {
            dynamic[g.output] = true;
        }
    }
    for (fi, f) in netlist.flops().iter().enumerate() {
        if !dynamic[f.d] {
            report.push(
                Diagnostic::new(
                    Rule::ConstantFlop,
                    Location::Flop(fi),
                    format!("flop D (net {}) depends on no primary input or flop — it latches a constant", f.d),
                )
                .with_hint("replace the register with the constant net"),
            );
        }
    }

    // ---- NL007 fanout -----------------------------------------------------
    let fanout = netlist.fanout_counts();
    let fmax = cfg.max_fanout.max(2);
    for (net, &fo) in fanout.iter().enumerate() {
        if fo > fmax {
            report.push(
                Diagnostic::new(
                    Rule::FanoutOverMax,
                    Location::Net(net),
                    format!("fanout {fo} exceeds max_fanout {fmax}; STA charges a buffer tree"),
                )
                .with_hint("restructure the cone or raise StaConfig::max_fanout deliberately"),
            );
        }
    }

    // ---- NL008/NL009 NLDM grid coverage -----------------------------------
    lint_nldm_coverage(netlist, lib, cfg, &fanout, &mut report);

    // ---- NL011 library-style mapping --------------------------------------
    let hist = netlist.histogram();
    for (kind, cell) in [
        (GateKind::Nand3, CellKind::Nand3),
        (GateKind::Nor3, CellKind::Nor3),
    ] {
        let n = hist.get(&kind).copied().unwrap_or(0);
        if n > 0 && prefers_decomposition(lib, cell) {
            report.push(
                Diagnostic::new(
                    Rule::UnmappedThreeInput,
                    Location::Cell(cell.name()),
                    format!(
                        "{n} {kind:?} gates, but library '{}' prefers 2-input decomposition",
                        lib.name
                    ),
                )
                .with_hint("run bdc_synth::map::remap_for_library before timing"),
            );
        }
    }

    report
}

/// Checks every STA lookup the netlist would perform against the
/// characterized NLDM axes, reporting extrapolations (NL008/NL009).
///
/// This mirrors the load/slew propagation in `bdc_synth::sta::analyze`:
/// per-net load is the sinks' pin capacitance plus placement-model wire
/// capacitance, and slews propagate through `out_slew` lookups in gate
/// order. Degenerate (1×1 constant) tables characterize nothing, so they
/// are skipped here and reported once per library by LB007.
fn lint_nldm_coverage(
    netlist: &Netlist,
    lib: &CellLibrary,
    cfg: &StaConfig,
    fanout: &[usize],
    report: &mut LintReport,
) {
    let placement = cfg.placement.place(netlist, lib);
    let inv = lib.cell(CellKind::Inv);
    let nominal_slew = cfg.input_slew.unwrap_or_else(|| {
        let s = inv.timing.delay_rise.slews();
        s[s.len() / 2]
    });

    let n_nets = netlist.net_count();
    let mut pin_load = vec![0.0f64; n_nets];
    for g in netlist.gates() {
        let cap = lib.cell(cell_of(g.kind)).input_cap;
        for &i in &g.inputs {
            pin_load[i] += cap;
        }
    }
    let dff_cap = lib.cell(CellKind::Dff).input_cap;
    for f in netlist.flops() {
        pin_load[f.d] += dff_cap;
    }

    let fmax = cfg.max_fanout.max(2);
    let mut slew = vec![nominal_slew; n_nets];
    for (gi, g) in netlist.gates().iter().enumerate() {
        let cell = lib.cell(cell_of(g.kind));
        let delay = cell.timing.delay_worst();
        if delay.loads().len() < 2 {
            // Degenerate table: nothing is characterized, nothing to check.
            continue;
        }
        // Buffer-treed nets present only a capped branch load to the driver,
        // exactly as STA models them.
        let fo = fanout[g.output].max(1);
        let load = if fo <= fmax {
            let wire_len = cfg.placement.local_net_length(&placement, fo);
            pin_load[g.output] + lib.wire.capacitance(wire_len)
        } else {
            let wire_len = cfg.placement.local_net_length(&placement, fmax);
            fmax as f64 * inv.input_cap + lib.wire.capacitance(wire_len)
        };
        let max_load = *delay.loads().last().expect("non-empty axis");
        if load > max_load * (1.0 + AXIS_TOLERANCE) {
            report.push(
                Diagnostic::new(
                    Rule::LoadBeyondTable,
                    Location::Gate(gi),
                    format!(
                        "{:?} drives {load:.3e} F, beyond the characterized load axis end {max_load:.3e} F",
                        g.kind
                    ),
                )
                .with_hint("re-characterize with a wider load axis or buffer the net"),
            );
        }

        let s_in = g
            .inputs
            .iter()
            .map(|&i| slew[i])
            .fold(nominal_slew, f64::max);
        let slew_axis = delay.slews();
        let max_slew = *slew_axis.last().expect("non-empty axis");
        if slew_axis.len() >= 2 && s_in > max_slew * (1.0 + AXIS_TOLERANCE) {
            report.push(
                Diagnostic::new(
                    Rule::SlewBeyondTable,
                    Location::Gate(gi),
                    format!(
                        "{:?} sees input slew {s_in:.3e} s, beyond the characterized slew axis end {max_slew:.3e} s",
                        g.kind
                    ),
                )
                .with_hint("insert a buffer upstream or extend the characterized slew axis"),
            );
        }
        // Propagate the (clamped, like STA) output slew.
        if cell.timing.out_slew.slews().len() >= 2 || cell.timing.out_slew.loads().len() >= 2 {
            let cap = max_slew.max(1.0e-18);
            slew[g.output] = cell.timing.out_slew.lookup(s_in, load).clamp(1.0e-18, cap);
        }
    }
}
