//! The determinism auditor: `D###` rules over workspace Rust sources.
//!
//! The flow's correctness story (PRs 2–5) is byte-identity: every rendered
//! artifact is content-addressed and golden-pinned. That story collapses if
//! any code on a render, serve, or cache path depends on ambient state —
//! hash-map iteration order, wall-clock time, random hasher seeds, thread
//! identity, or raw environment reads. This module makes those hazards
//! statically checkable:
//!
//! * [`lex`] — a std-only Rust lexer. It never panics on arbitrary input
//!   and its token spans partition the input exactly (concatenating the
//!   spans reproduces the source byte-for-byte), which the proptest suite
//!   pins down.
//! * [`lint_source`] — scans one file's token stream for hazards, skipping
//!   `use` declarations, attribute bodies, and `#[cfg(test)]`/`#[test]`
//!   items, and honouring suppressions of the form
//!   `// bdc-lint: allow(D001, reason)`.
//! * [`lint_workspace`] — walks `crates/` (sorted, so reports are
//!   deterministic), classifies each file into a [`SourceClass`], and
//!   merges the per-file reports. `bdc lint --workspace` is a thin wrapper.
//!
//! Which rules apply where is a property of the *path class*, not the
//! file: `HashMap` lookups keyed by `u64` are harmless in a CLI but a
//! hazard in a render path, and `std::env` reads are `bdc-exec`'s job but
//! suspicious anywhere bytes are rendered. The catalogue with rationale
//! lives in `DESIGN.md` §5i.

use std::path::{Path, PathBuf};

use crate::diag::{Diagnostic, LintReport, Location, Rule};

/// What a lexed token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Horizontal/vertical whitespace run.
    Whitespace,
    /// `// ...` (including doc comments) up to, not including, the newline.
    LineComment,
    /// `/* ... */`, nesting, unterminated-at-EOF tolerated.
    BlockComment,
    /// String literal: `"..."`, `r#"..."#`, `b"..."`, `c"..."`.
    Str,
    /// Character or byte-character literal: `'x'`, `b'\n'`.
    Char,
    /// Lifetime: `'a` (an apostrophe not closing as a char literal).
    Lifetime,
    /// Numeric literal (split conservatively; `1.0e-3` lexes as several
    /// tokens, which round-trips and is irrelevant to the D-rules).
    Number,
    /// Identifier or keyword.
    Ident,
    /// Any other single byte.
    Punct,
}

/// One token: a kind plus its byte span in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// The token's kind.
    pub kind: TokenKind,
    /// Byte offset of the token's first byte.
    pub start: usize,
    /// Byte offset one past the token's last byte.
    pub end: usize,
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic() || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    is_ident_start(b) || b.is_ascii_digit()
}

/// Scans a normal (escaped) string body; `i` points just past the opening
/// quote. Returns the offset just past the closing quote, or EOF.
fn scan_string_body(b: &[u8], mut i: usize) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i = (i + 2).min(b.len()),
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Tries to scan a raw or prefixed string starting at `i` (`r"`, `r#"`,
/// `b"`, `br"`, `c"`, `cr#"` …). Returns the end offset on success.
fn scan_raw_or_prefixed_string(b: &[u8], i: usize) -> Option<usize> {
    let mut j = i;
    let mut raw = false;
    match b.get(j)? {
        b'r' => {
            raw = true;
            j += 1;
        }
        b'b' | b'c' => {
            j += 1;
            if b.get(j) == Some(&b'r') {
                raw = true;
                j += 1;
            }
        }
        _ => return None,
    }
    if !raw {
        return if b.get(j) == Some(&b'"') {
            Some(scan_string_body(b, j + 1))
        } else {
            None
        };
    }
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) != Some(&b'"') {
        return None; // `r#ident` raw identifiers fall back to the ident path
    }
    j += 1;
    while j < b.len() {
        if b[j] == b'"'
            && b[j + 1..]
                .iter()
                .take(hashes)
                .filter(|&&h| h == b'#')
                .count()
                == hashes
        {
            return Some(j + 1 + hashes);
        }
        j += 1;
    }
    Some(j)
}

/// Scans a char literal or lifetime; `i` points at the apostrophe. Returns
/// `(end, kind)`.
fn scan_char_or_lifetime(src: &str, i: usize) -> (usize, TokenKind) {
    let b = src.as_bytes();
    let j = i + 1;
    match b.get(j) {
        None => (j, TokenKind::Lifetime),
        Some(b'\\') => {
            // Escaped char literal: skip the escape, then run to the
            // closing quote (or EOF) string-style.
            let mut k = (j + 2).min(b.len());
            while k < b.len() && b[k] != b'\'' {
                k = if b[k] == b'\\' { k + 2 } else { k + 1 };
            }
            ((k + 1).min(b.len()), TokenKind::Char)
        }
        Some(b'\'') => (j + 1, TokenKind::Char), // malformed `''`: consume both
        Some(_) => {
            // One char then a closing quote → char literal; otherwise a
            // lifetime (consume apostrophe + ident chars).
            let ch_len = src[j..].chars().next().map_or(1, char::len_utf8);
            if b.get(j + ch_len) == Some(&b'\'') {
                (j + ch_len + 1, TokenKind::Char)
            } else {
                let mut k = j;
                while k < b.len() && is_ident_continue(b[k]) {
                    k += 1;
                }
                (k, TokenKind::Lifetime)
            }
        }
    }
}

/// Tokenizes Rust source. Total: every input byte lands in exactly one
/// token, in order, so `tokens.map(|t| &src[t.start..t.end]).concat() ==
/// src`; never panics, whatever the input.
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        let start = i;
        let kind = match b[i] {
            b'/' if b.get(i + 1) == Some(&b'/') => {
                i += 2;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                TokenKind::LineComment
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                i += 2;
                let mut depth = 1usize;
                while i < b.len() && depth > 0 {
                    if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                TokenKind::BlockComment
            }
            b'"' => {
                i = scan_string_body(b, i + 1);
                TokenKind::Str
            }
            b'\'' => {
                let (end, kind) = scan_char_or_lifetime(src, i);
                i = end;
                kind
            }
            c if c.is_ascii_whitespace() => {
                while i < b.len() && b[i].is_ascii_whitespace() {
                    i += 1;
                }
                TokenKind::Whitespace
            }
            c if c.is_ascii_digit() => {
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                if b.get(i) == Some(&b'.') && b.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                }
                TokenKind::Number
            }
            c if is_ident_start(c) => {
                if let Some(end) = scan_raw_or_prefixed_string(b, i) {
                    i = end;
                    TokenKind::Str
                } else if (c == b'b') && b.get(i + 1) == Some(&b'\'') {
                    let (end, _) = scan_char_or_lifetime(src, i + 1);
                    i = end;
                    TokenKind::Char
                } else {
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                    TokenKind::Ident
                }
            }
            _ => {
                i += 1;
                TokenKind::Punct
            }
        };
        // Defensive: every arm above consumes at least one byte, so spans
        // are non-empty and the loop always terminates.
        debug_assert!(i > start);
        tokens.push(Token {
            kind,
            start,
            end: i,
        });
    }
    tokens
}

/// Which determinism contract a source file lives under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceClass {
    /// Produces cached/golden-pinned artifact bytes (`bdc-core`,
    /// `bdc-synth`, `bdc-cells`, `bdc-circuit`, `bdc-device`, `bdc-uarch`,
    /// `bdc-lint`, `bdc-verify` library code).
    Render,
    /// Request paths of the serving daemon (`bdc-serve`): everything in
    /// `Render` plus panic-freedom (`D005`).
    Serve,
    /// Execution substrate (`bdc-exec`): reading `BDC_*` env knobs is its
    /// job, so `D006` does not apply, but hash-order/time/random hazards
    /// still do.
    Infra,
    /// CLI binaries, bench harnesses, `build.rs` (`bdc-bench`, `src/bin/`):
    /// human-facing output, only the portable hazards (`D003`, `D004`).
    Tooling,
    /// Not scanned: vendored compat stubs, tests, benches, examples.
    Exempt,
}

impl SourceClass {
    /// The D-rules enforced for this class.
    pub fn rules(self) -> &'static [Rule] {
        match self {
            SourceClass::Render => &[
                Rule::HashOrderHazard,
                Rule::AmbientTime,
                Rule::RandomStateHazard,
                Rule::ThreadIdHazard,
                Rule::AmbientEnv,
            ],
            SourceClass::Serve => &[
                Rule::HashOrderHazard,
                Rule::AmbientTime,
                Rule::RandomStateHazard,
                Rule::ThreadIdHazard,
                Rule::ServeUnwrap,
                Rule::AmbientEnv,
            ],
            SourceClass::Infra => &[
                Rule::HashOrderHazard,
                Rule::AmbientTime,
                Rule::RandomStateHazard,
                Rule::ThreadIdHazard,
            ],
            SourceClass::Tooling => &[Rule::RandomStateHazard, Rule::ThreadIdHazard],
            SourceClass::Exempt => &[],
        }
    }
}

/// Classifies a workspace-relative path (forward or backward slashes).
pub fn classify_path(rel: &str) -> SourceClass {
    let p = rel.replace('\\', "/");
    let Some(at) = p.find("crates/") else {
        return SourceClass::Exempt;
    };
    if p.contains("crates/compat/")
        || p.contains("/tests/")
        || p.contains("/benches/")
        || p.contains("/examples/")
    {
        return SourceClass::Exempt;
    }
    if p.contains("/src/bin/") || p.ends_with("/build.rs") {
        return SourceClass::Tooling;
    }
    let krate = p[at + "crates/".len()..].split('/').next().unwrap_or("");
    match krate {
        "bdc-serve" | "bdc-cluster" => SourceClass::Serve,
        "bdc-exec" => SourceClass::Infra,
        "bdc-bench" => SourceClass::Tooling,
        _ => SourceClass::Render,
    }
}

/// The allow-directive marker scanned for inside comments.
const ALLOW_MARKER: &str = "bdc-lint: allow(";

/// Parses the inside of one `allow(...)`; `rest` starts just past the
/// opening paren. Returns `(rule, bytes consumed)` or a D007 message.
fn parse_allow(rest: &str) -> Result<(Rule, usize), String> {
    let Some(close) = rest.find(')') else {
        return Err("unterminated `bdc-lint: allow(` directive".into());
    };
    let inner = &rest[..close];
    let Some((id, reason)) = inner.split_once(',') else {
        return Err(format!(
            "allow({inner}) is missing a reason — write `allow(RULE, why this is sound)`"
        ));
    };
    let id = id.trim();
    let Some(rule) = Rule::from_id(id) else {
        return Err(format!("allow references unknown rule id `{id}`"));
    };
    if reason.trim().is_empty() {
        return Err(format!(
            "allow({id}, …) has an empty reason — say why the hazard is sound"
        ));
    }
    Ok((rule, close + 1))
}

/// Scanner state shared by the helpers below.
struct Scan<'a> {
    src: &'a str,
    path: &'a str,
    /// Significant tokens (no whitespace, no comments).
    sig: Vec<Token>,
    /// Byte offsets where each line starts, for offset→line mapping.
    line_starts: Vec<usize>,
    /// `(rule, directive line)` pairs; each suppresses findings on that
    /// line and the next.
    allows: Vec<(Rule, usize)>,
}

impl<'a> Scan<'a> {
    fn text(&self, t: Token) -> &'a str {
        &self.src[t.start..t.end]
    }

    fn line_of(&self, offset: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= offset)
    }

    fn is_punct(&self, i: usize, s: &str) -> bool {
        self.sig
            .get(i)
            .is_some_and(|&t| t.kind == TokenKind::Punct && self.text(t) == s)
    }

    fn ident_at(&self, i: usize) -> Option<&'a str> {
        let t = *self.sig.get(i)?;
        (t.kind == TokenKind::Ident).then(|| self.text(t))
    }

    /// `sig[i]` begins `:: seg` for one of `segs`?
    fn path_seg(&self, i: usize, segs: &[&str]) -> bool {
        self.is_punct(i, ":")
            && self.is_punct(i + 1, ":")
            && self.ident_at(i + 2).is_some_and(|w| segs.contains(&w))
    }

    fn suppressed(&self, rule: Rule, line: usize) -> bool {
        self.allows
            .iter()
            .any(|&(r, l)| r == rule && (line == l || line == l + 1))
    }

    /// Skips an attribute starting at `#` (or `#!`); returns the index just
    /// past the closing `]` and whether it marks a test-only item.
    fn skip_attr(&self, i: usize) -> (usize, bool) {
        let mut j = i + 1;
        let inner = self.is_punct(j, "!");
        if inner {
            j += 1;
        }
        if !self.is_punct(j, "[") {
            return (i + 1, false);
        }
        let body = j + 1;
        let mut depth = 1usize;
        j += 1;
        while j < self.sig.len() && depth > 0 {
            if self.is_punct(j, "[") {
                depth += 1;
            } else if self.is_punct(j, "]") {
                depth -= 1;
            }
            j += 1;
        }
        let is_test = !inner
            && (matches!(self.ident_at(body), Some("test" | "bench" | "ignore"))
                || (self.ident_at(body) == Some("cfg")
                    && self.is_punct(body + 1, "(")
                    && self.ident_at(body + 2) == Some("test")
                    && self.is_punct(body + 3, ")")));
        (j, is_test)
    }

    /// Skips one item (to `;` at depth 0, or over its `{...}` body),
    /// including any further leading attributes.
    fn skip_item(&self, mut i: usize) -> usize {
        while self.is_punct(i, "#") {
            (i, _) = self.skip_attr(i);
        }
        let mut depth = 0usize;
        while i < self.sig.len() {
            if self.is_punct(i, "{") {
                depth += 1;
            } else if self.is_punct(i, "}") {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            } else if self.is_punct(i, ";") && depth == 0 {
                return i + 1;
            }
            i += 1;
        }
        i
    }
}

/// Lints one file's source text under `class` rules. `path` is the
/// workspace-relative path used in diagnostics.
pub fn lint_source(path: &str, class: SourceClass, src: &str) -> LintReport {
    let mut report = LintReport::new(path);
    if class == SourceClass::Exempt {
        return report;
    }
    let tokens = lex(src);
    let mut line_starts = vec![0usize];
    line_starts.extend(
        src.bytes()
            .enumerate()
            .filter(|&(_, b)| b == b'\n')
            .map(|(i, _)| i + 1),
    );
    let mut scan = Scan {
        src,
        path,
        sig: tokens
            .iter()
            .filter(|t| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .copied()
            .collect(),
        line_starts,
        allows: Vec::new(),
    };

    // Pass A: collect allow directives (and flag malformed ones, D007).
    for t in tokens
        .iter()
        .filter(|t| matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
    {
        let text = &src[t.start..t.end];
        let mut at = 0usize;
        while let Some(p) = text[at..].find(ALLOW_MARKER) {
            let body = at + p + ALLOW_MARKER.len();
            let line = scan.line_of(t.start + body);
            match parse_allow(&text[body..]) {
                Ok((rule, consumed)) => {
                    scan.allows.push((rule, line));
                    at = body + consumed;
                }
                Err(msg) => {
                    report.push(
                        Diagnostic::new(
                            Rule::BadAllowDirective,
                            Location::Source {
                                file: path.into(),
                                line,
                            },
                            msg,
                        )
                        .with_hint("syntax: // bdc-lint: allow(D001, reason)"),
                    );
                    at = body;
                }
            }
        }
    }

    // Pass B: hazard scan over significant tokens.
    let rules = class.rules();
    let mut i = 0usize;
    while i < scan.sig.len() {
        if scan.is_punct(i, "#") {
            let (next, is_test) = scan.skip_attr(i);
            i = if is_test { scan.skip_item(next) } else { next };
            continue;
        }
        let Some(word) = scan.ident_at(i) else {
            i += 1;
            continue;
        };
        if word == "use" {
            while i < scan.sig.len() && !scan.is_punct(i, ";") {
                i += 1;
            }
            continue;
        }
        let hit: Option<(Rule, String, &str)> = match word {
            "HashMap" | "HashSet" => Some((
                Rule::HashOrderHazard,
                format!("`{word}` on a {class:?} path — iteration order is per-process random"),
                "use BTreeMap/BTreeSet or sort before iterating; allow(D001, …) if \
                 iteration never reaches output bytes",
            )),
            "RandomState" => Some((
                Rule::RandomStateHazard,
                "explicit `RandomState` — a randomly seeded hasher".into(),
                "use a fixed-seed hasher or an ordered container",
            )),
            "Instant" | "SystemTime" if scan.path_seg(i + 1, &["now"]) => Some((
                Rule::AmbientTime,
                format!("`{word}::now()` — wall-clock reads must not reach artifact bytes"),
                "derive timestamps from inputs, or allow(D002, …) for pure telemetry",
            )),
            "thread" if scan.path_seg(i + 1, &["current"]) => Some((
                Rule::ThreadIdHazard,
                "`thread::current()` — output must not depend on scheduler identity".into(),
                "thread identity varies run to run; key work by index instead",
            )),
            "env" if scan.path_seg(i + 1, &["var", "var_os", "vars", "vars_os"]) => Some((
                Rule::AmbientEnv,
                "raw `std::env` read — ambient configuration bypasses the cache key".into(),
                "route knobs through bdc_exec::env_config() and the node cache key",
            )),
            "unwrap" | "expect" if scan.is_punct(i.wrapping_sub(1), ".") => Some((
                Rule::ServeUnwrap,
                format!("`.{word}()` on a request path — a panic kills the connection worker"),
                "return a 4xx/5xx response (or recover, e.g. unwrap_or_else for lock poison)",
            )),
            _ => None,
        };
        if let Some((rule, message, hint)) = hit {
            let line = scan.line_of(scan.sig[i].start);
            if rules.contains(&rule) && !scan.suppressed(rule, line) {
                report.push(
                    Diagnostic::new(
                        rule,
                        Location::Source {
                            file: scan.path.into(),
                            line,
                        },
                        message,
                    )
                    .with_hint(hint),
                );
            }
        }
        i += 1;
    }
    report
}

/// Recursively collects `.rs` files under `dir`, sorted for deterministic
/// reports; `target/` subtrees are skipped.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = rd.flatten().map(|e| e.path()).collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Lints every non-exempt `.rs` file under `root/crates`, merging the
/// per-file reports into one (subject `workspace`). File order, and
/// therefore diagnostic order, is path-sorted — byte-stable across runs
/// and worker counts.
pub fn lint_workspace(root: &Path) -> LintReport {
    let mut report = LintReport::new("workspace");
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files);
    for f in files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(&f)
            .to_string_lossy()
            .replace('\\', "/");
        let class = classify_path(&rel);
        if class == SourceClass::Exempt {
            continue;
        }
        let Ok(bytes) = std::fs::read(&f) else {
            continue;
        };
        report.merge(lint_source(&rel, class, &String::from_utf8_lossy(&bytes)));
    }
    report
}

/// Walks up from the current directory to the first directory whose
/// `Cargo.toml` declares `[workspace]` — where `bdc lint --workspace` and
/// `bdc verify` anchor their file walk and report artifact.
pub fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trips(src: &str) {
        let toks = lex(src);
        let mut rebuilt = String::new();
        let mut expect_start = 0usize;
        for t in &toks {
            assert_eq!(t.start, expect_start, "gap before {t:?} in {src:?}");
            assert!(t.end > t.start, "empty token {t:?}");
            rebuilt.push_str(&src[t.start..t.end]);
            expect_start = t.end;
        }
        assert_eq!(rebuilt, src);
    }

    #[test]
    fn lexer_round_trips_representative_rust() {
        round_trips("");
        round_trips("fn main() { println!(\"hi {}\", 1.0e-3); }");
        round_trips("// line\n/* block /* nested */ */ let s = r#\"raw \" str\"#;");
        round_trips("let c = 'x'; let e = '\\n'; let l: &'static str = \"s\"; let b = b'q';");
        round_trips("let bytes = b\"abc\"; let r = r\"no escape\\\"; let n = 0xFF_u32;");
        round_trips("let r#type = 1; 'outer: loop { break 'outer; }");
        round_trips("let unterminated = \"oops");
        round_trips("/* unterminated block");
        round_trips("日本語 let π = 3.14; '日'");
    }

    #[test]
    fn lexer_classifies_kinds() {
        let kinds: Vec<TokenKind> = lex("'a 'b' // c").iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TokenKind::Lifetime,
                TokenKind::Whitespace,
                TokenKind::Char,
                TokenKind::Whitespace,
                TokenKind::LineComment,
            ]
        );
    }

    fn fired(r: &LintReport, rule: Rule) -> bool {
        r.diagnostics.iter().any(|d| d.rule == rule)
    }

    #[test]
    fn d001_fires_on_hash_containers_in_render() {
        let src = "fn f() { let m: HashMap<u32, u32> = Default::default(); }";
        let r = lint_source("crates/bdc-synth/src/x.rs", SourceClass::Render, src);
        assert!(fired(&r, Rule::HashOrderHazard), "{r}");
        assert!(!r.is_clean());
    }

    #[test]
    fn d001_skips_use_declarations_and_tests() {
        let src = "use std::collections::HashMap;\n\
                   #[cfg(test)]\nmod tests { fn g() { let m = HashMap::new(); } }\n\
                   #[test]\nfn t() { let s = HashSet::new(); }\n";
        let r = lint_source("crates/bdc-synth/src/x.rs", SourceClass::Render, src);
        assert!(r.diagnostics.is_empty(), "{r}");
    }

    #[test]
    fn d001_not_applied_to_tooling() {
        let src = "fn f() { let m = HashMap::new(); }";
        let r = lint_source("crates/bdc-bench/src/x.rs", SourceClass::Tooling, src);
        assert!(r.diagnostics.is_empty(), "{r}");
    }

    #[test]
    fn d002_fires_on_instant_now_but_not_type_position() {
        let hazard = "fn f() { let t = Instant::now(); }";
        let r = lint_source("x.rs", SourceClass::Render, hazard);
        assert!(fired(&r, Rule::AmbientTime), "{r}");
        let benign = "struct S { start: Instant }";
        let r = lint_source("x.rs", SourceClass::Render, benign);
        assert!(r.diagnostics.is_empty(), "{r}");
    }

    #[test]
    fn d003_and_d004_fire_everywhere_scanned() {
        let src = "fn f() { let h = RandomState::new(); let id = thread::current().id(); }";
        for class in [SourceClass::Tooling, SourceClass::Render] {
            let r = lint_source("x.rs", class, src);
            assert!(fired(&r, Rule::RandomStateHazard), "{class:?}: {r}");
            assert!(fired(&r, Rule::ThreadIdHazard), "{class:?}: {r}");
        }
    }

    #[test]
    fn d005_fires_only_on_serve_request_paths() {
        let src = "fn f(m: &Mutex<u32>) { let g = m.lock().unwrap(); let v = g.checked_add(1).expect(\"ok\"); }";
        let serve = lint_source("x.rs", SourceClass::Serve, src);
        assert_eq!(
            serve
                .diagnostics
                .iter()
                .filter(|d| d.rule == Rule::ServeUnwrap)
                .count(),
            2,
            "{serve}"
        );
        let render = lint_source("x.rs", SourceClass::Render, src);
        assert!(render.diagnostics.is_empty(), "{render}");
        // The poison-recovery idiom is a distinct identifier — no finding.
        let idiom = "fn f(m: &Mutex<u32>) { let g = m.lock().unwrap_or_else(|p| p.into_inner()); }";
        let r = lint_source("x.rs", SourceClass::Serve, idiom);
        assert!(r.diagnostics.is_empty(), "{r}");
    }

    #[test]
    fn d006_fires_on_env_reads_in_render_only() {
        let src = "fn f() { let v = std::env::var(\"BDC_WORKERS\"); }";
        let r = lint_source("x.rs", SourceClass::Render, src);
        assert!(fired(&r, Rule::AmbientEnv), "{r}");
        let infra = lint_source("x.rs", SourceClass::Infra, src);
        assert!(infra.diagnostics.is_empty(), "{infra}");
    }

    #[test]
    fn allow_directive_suppresses_same_and_next_line() {
        let trailing =
            "fn f() { let t = Instant::now(); } // bdc-lint: allow(D002, telemetry only)";
        let r = lint_source("x.rs", SourceClass::Render, trailing);
        assert!(r.diagnostics.is_empty(), "{r}");
        let above = "// bdc-lint: allow(D002, telemetry only)\nfn f() { let t = Instant::now(); }";
        let r = lint_source("x.rs", SourceClass::Render, above);
        assert!(r.diagnostics.is_empty(), "{r}");
        // Two lines below the directive is out of scope.
        let far = "// bdc-lint: allow(D002, telemetry only)\n\nfn f() { let t = Instant::now(); }";
        let r = lint_source("x.rs", SourceClass::Render, far);
        assert!(fired(&r, Rule::AmbientTime), "{r}");
        // An allow for a different rule does not suppress.
        let wrong = "fn f() { let t = Instant::now(); } // bdc-lint: allow(D001, wrong rule)";
        let r = lint_source("x.rs", SourceClass::Render, wrong);
        assert!(fired(&r, Rule::AmbientTime), "{r}");
    }

    #[test]
    fn d007_fires_on_malformed_allows() {
        for bad in [
            "// bdc-lint: allow(D001)",
            "// bdc-lint: allow(D999, made-up rule)",
            "// bdc-lint: allow(D001,   )",
            "// bdc-lint: allow(D001, no close",
        ] {
            let r = lint_source("x.rs", SourceClass::Render, bad);
            assert!(fired(&r, Rule::BadAllowDirective), "{bad}: {r}");
        }
    }

    #[test]
    fn classify_path_maps_crates_to_classes() {
        use SourceClass::*;
        let cases = [
            ("crates/bdc-synth/src/gate.rs", Render),
            ("crates/bdc-core/src/registry/mod.rs", Render),
            ("crates/bdc-serve/src/engine.rs", Serve),
            ("crates/bdc-cluster/src/router.rs", Serve),
            ("crates/bdc-exec/src/cache.rs", Infra),
            ("crates/bdc-bench/src/lib.rs", Tooling),
            ("crates/bdc-bench/src/bin/bdc.rs", Tooling),
            ("crates/bdc-core/src/bin/helper.rs", Tooling),
            ("crates/compat/proptest/src/lib.rs", Exempt),
            ("crates/bdc-lint/tests/lexer_proptest.rs", Exempt),
            ("crates/bdc-bench/benches/components.rs", Exempt),
            ("tests/registry_catalogue.rs", Exempt),
        ];
        for (path, want) in cases {
            assert_eq!(classify_path(path), want, "{path}");
        }
    }

    #[test]
    fn lint_workspace_on_this_repo_is_deny_clean() {
        // The acceptance gate, from the inside: zero Error-severity
        // findings across the workspace sources.
        let Some(root) = find_workspace_root() else {
            return; // not running inside the repo checkout
        };
        let r = lint_workspace(&root);
        assert!(r.is_clean(), "{r}");
    }
}
