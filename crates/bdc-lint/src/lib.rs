#![warn(missing_docs)]

//! Static analysis for the biodegradable-computing flow.
//!
//! The paper's Figure-10 flow hands artifacts between layers — transistor
//! netlists into SPICE, the 6-cell library into synthesis, gate netlists
//! into STA — and silently assumes each is well-formed. This crate makes
//! those invariants explicit as a rule-based analyzer with a unified
//! diagnostic model ([`Rule`], [`Severity`], [`Location`], fix hints) and
//! three front-ends:
//!
//! * [`lint_netlist`] — gate-level rules over [`bdc_synth::gate::Netlist`]
//!   (connectivity, topological order, liveness, fanout, NLDM coverage,
//!   library-style mapping);
//! * [`lint_library`] — physical sanity of a [`bdc_cells::CellLibrary`]
//!   and its NLDM tables (monotonicity, signs, rails, DFF timing);
//! * [`lint_device`] — plausibility of fitted [`bdc_device::TftParams`].
//!
//! The rule catalogue with rationale lives in `DESIGN.md` §"Static
//! analysis". `bdc_core::flow` runs the gate-level pass before STA
//! (configurable warn/deny), and the `lint_report` binary in `bdc-bench`
//! audits every generated netlist plus the shipped libraries.

pub mod diag;
pub mod library;
pub mod netlist;
pub mod source;

pub use diag::{Diagnostic, LintReport, Location, Rule, Severity, ALL_RULES};
pub use library::{lint_device, lint_library};
pub use netlist::lint_netlist;
pub use source::{
    find_workspace_root, lex, lint_source, lint_workspace, SourceClass, Token, TokenKind,
};

#[cfg(test)]
mod tests {
    //! One test per rule proving it fires on a minimal violating input,
    //! plus clean-pass checks on healthy artifacts.

    use bdc_cells::{Cell, CellKind, CellLibrary, DffTiming, NldmTable, ProcessKind, WireModel};
    use bdc_device::TftParams;
    use bdc_synth::gate::Netlist;
    use bdc_synth::sta::StaConfig;
    use bdc_synth::GateKind;

    use super::*;

    fn lib() -> CellLibrary {
        CellLibrary::synthetic(ProcessKind::Silicon45, 15.0e-12)
    }

    fn cfg() -> StaConfig {
        StaConfig::default()
    }

    fn fired(report: &LintReport, rule: Rule) -> bool {
        report.diagnostics.iter().any(|d| d.rule == rule)
    }

    /// A library whose NLDM tables have real (non-degenerate) axes, for the
    /// grid-coverage and monotonicity rules.
    fn gridded_lib() -> CellLibrary {
        let table = || {
            NldmTable::new(
                vec![1.0e-12, 1.0e-11, 1.0e-10],
                vec![1.0e-15, 1.0e-14, 1.0e-13],
                vec![
                    vec![1.0e-12, 2.0e-12, 4.0e-12],
                    vec![2.0e-12, 3.0e-12, 5.0e-12],
                    vec![4.0e-12, 5.0e-12, 7.0e-12],
                ],
            )
        };
        let mk = |kind: CellKind| Cell {
            kind,
            area: 1.0,
            input_cap: 1.5e-15,
            leakage_w: 1.0e-9,
            switching_energy: 1.0e-15,
            timing: bdc_cells::characterize::GateTiming {
                delay_rise: table(),
                delay_fall: table(),
                out_slew: table(),
            },
        };
        CellLibrary::from_cells(
            "gridded",
            ProcessKind::Silicon45,
            1.0,
            0.0,
            WireModel::silicon_45nm(),
            DffTiming {
                setup: 1.0e-11,
                hold: 1.0e-12,
                clk_to_q: 1.0e-11,
            },
            CellKind::all().into_iter().map(mk).collect(),
        )
    }

    // ---- gate-level rules --------------------------------------------------

    #[test]
    fn nl001_undriven_net_fires() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let ghost = n.net();
        let y = n.nand2(a, ghost);
        n.output(y, "y");
        let r = lint_netlist(&n, &lib(), &cfg());
        assert!(fired(&r, Rule::UndrivenNet), "{r}");
        assert!(!r.is_clean());
    }

    #[test]
    fn nl002_multiple_drivers_fires() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let x = n.inv(a);
        n.output(x, "y");
        // A second driver onto x via the rewriter escape hatch.
        n.gate_into(GateKind::Inv, &[a], x);
        let r = lint_netlist(&n, &lib(), &cfg());
        assert!(fired(&r, Rule::MultipleDrivers), "{r}");
    }

    #[test]
    fn nl003_non_topological_fires() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let fwd = n.net();
        // First gate reads `fwd`, which only a *later* gate drives.
        let y = n.nand2(a, fwd);
        n.gate_into(GateKind::Inv, &[y], fwd);
        n.output(y, "y");
        let r = lint_netlist(&n, &lib(), &cfg());
        assert!(fired(&r, Rule::NonTopological), "{r}");
    }

    #[test]
    fn nl004_dead_gate_fires() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let x = n.inv(a);
        let _dead = n.inv(x);
        n.output(x, "y");
        let r = lint_netlist(&n, &lib(), &cfg());
        assert!(fired(&r, Rule::DeadGate), "{r}");
    }

    #[test]
    fn nl005_floating_net_fires() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let _floating = n.net();
        let y = n.inv(a);
        n.output(y, "y");
        let r = lint_netlist(&n, &lib(), &cfg());
        assert!(fired(&r, Rule::FloatingNet), "{r}");
    }

    #[test]
    fn nl006_unused_input_fires() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let _b = n.input("b");
        let y = n.inv(a);
        n.output(y, "y");
        let r = lint_netlist(&n, &lib(), &cfg());
        assert!(fired(&r, Rule::UnusedInput), "{r}");
    }

    #[test]
    fn nl007_fanout_over_max_fires() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let x = n.inv(a);
        for i in 0..10 {
            let y = n.inv(x);
            n.output(y, format!("y{i}"));
        }
        let cfg = StaConfig {
            max_fanout: 4,
            ..cfg()
        };
        let r = lint_netlist(&n, &lib(), &cfg);
        assert!(fired(&r, Rule::FanoutOverMax), "{r}");
        // Info severity: the report stays clean.
        assert!(r.is_clean());
    }

    #[test]
    fn nl008_load_beyond_table_fires() {
        // 120 sinks but max_fanout high enough that no buffer tree caps the
        // load: the driver sees ~180 fF of pin cap, beyond the 100 fF axis end.
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let x = n.inv(a);
        for i in 0..120 {
            let y = n.inv(x);
            n.output(y, format!("y{i}"));
        }
        let cfg = StaConfig {
            max_fanout: 256,
            ..cfg()
        };
        let r = lint_netlist(&n, &gridded_lib(), &cfg);
        assert!(fired(&r, Rule::LoadBeyondTable), "{r}");
    }

    #[test]
    fn nl009_slew_beyond_table_fires() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let y = n.inv(a);
        n.output(y, "y");
        // Drive the primary inputs with a slew far beyond the grid.
        let cfg = StaConfig {
            input_slew: Some(1.0),
            ..cfg()
        };
        let r = lint_netlist(&n, &gridded_lib(), &cfg);
        assert!(fired(&r, Rule::SlewBeyondTable), "{r}");
    }

    #[test]
    fn nl010_dead_flop_fires() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let _q = n.flop(a);
        let y = n.inv(a);
        n.output(y, "y");
        let r = lint_netlist(&n, &lib(), &cfg());
        assert!(fired(&r, Rule::DeadFlop), "{r}");
    }

    #[test]
    fn nl011_unmapped_three_input_fires() {
        // The organic synthetic library has slow NAND3s relative to its
        // NAND2s? Build a library where decomposition wins by construction:
        // scale NAND3 delay up via the synthetic library's fixed ratios.
        // Synthetic ratios: nand3 = 1.9, nand2 = 1.4, inv = 1.0 → decomp
        // (2·1.4 + 1.0 = 3.8 worst) loses. Make a custom check instead: use
        // gridded_lib with a slowed NAND3.
        let mut cells: Vec<Cell> = gridded_lib().cells().to_vec();
        for c in &mut cells {
            if c.kind == CellKind::Nand3 {
                c.timing.delay_rise = c.timing.delay_rise.map(|d| d * 20.0);
                c.timing.delay_fall = c.timing.delay_fall.map(|d| d * 20.0);
            }
        }
        let g = gridded_lib();
        let slow3 = CellLibrary::from_cells(
            "slow-nand3",
            ProcessKind::Silicon45,
            g.vdd,
            g.vss,
            g.wire,
            g.dff,
            cells,
        );
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        let y = n.nand3(a, b, c);
        n.output(y, "y");
        let r = lint_netlist(&n, &slow3, &cfg());
        assert!(fired(&r, Rule::UnmappedThreeInput), "{r}");
    }

    #[test]
    fn nl012_constant_flop_fires() {
        let mut n = Netlist::new("t");
        let c = n.const1();
        let x = n.inv(c);
        let q = n.flop(x);
        n.output(q, "y");
        let r = lint_netlist(&n, &lib(), &cfg());
        assert!(fired(&r, Rule::ConstantFlop), "{r}");
    }

    #[test]
    fn healthy_netlist_is_clean() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        let (s, co) = n.full_adder(a, b, c);
        n.output(s, "s");
        n.output(co, "co");
        let r = lint_netlist(&n, &lib(), &cfg());
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.count(Severity::Warning), 0, "{r}");
    }

    #[test]
    fn fixed_generators_carry_no_dead_logic() {
        // Regression: priority_select used to build a dead prefix cone for
        // incl[entries−1], and random_logic exposed only its last 8 nets,
        // leaving unreached cones and untouched inputs dangling.
        for n in [
            bdc_synth::blocks::priority_select(32),
            bdc_synth::blocks::priority_select(8),
            bdc_synth::blocks::random_logic(24, 500, 0xFE7C),
        ] {
            let r = lint_netlist(&n, &lib(), &cfg());
            for rule in [Rule::DeadGate, Rule::FloatingNet, Rule::UnusedInput] {
                assert!(!fired(&r, rule), "{} in {}: {r}", rule.id(), n.name);
            }
        }
    }

    // ---- library-level rules -----------------------------------------------

    /// Rebuilds the gridded library after mutating one cell.
    fn with_cell(f: impl Fn(&mut Cell)) -> CellLibrary {
        let g = gridded_lib();
        let mut cells: Vec<Cell> = g.cells().to_vec();
        for c in &mut cells {
            f(c);
        }
        CellLibrary::from_cells("mutated", g.process, g.vdd, g.vss, g.wire, g.dff, cells)
    }

    #[test]
    fn lb001_non_monotone_delay_fires() {
        let bad = with_cell(|c| {
            if c.kind == CellKind::Inv {
                // Invert the load dependence of one row.
                c.timing.delay_rise = NldmTable::new(
                    c.timing.delay_rise.slews().to_vec(),
                    c.timing.delay_rise.loads().to_vec(),
                    vec![
                        vec![4.0e-12, 2.0e-12, 1.0e-12],
                        vec![2.0e-12, 3.0e-12, 5.0e-12],
                        vec![4.0e-12, 5.0e-12, 7.0e-12],
                    ],
                );
            }
        });
        let r = lint_library(&bad);
        assert!(fired(&r, Rule::NonMonotoneDelay), "{r}");
    }

    #[test]
    fn lb002_negative_delay_fires() {
        let bad = with_cell(|c| {
            if c.kind == CellKind::Nor2 {
                c.timing.delay_fall = c.timing.delay_fall.map(|d| d - 1.0e-11);
            }
        });
        let r = lint_library(&bad);
        assert!(fired(&r, Rule::NegativeDelay), "{r}");
        assert!(!r.is_clean());
    }

    #[test]
    fn lb003_rail_order_fires() {
        let g = gridded_lib();
        let bad = CellLibrary::from_cells(
            "bad-rails",
            g.process,
            -1.0,
            0.0,
            g.wire,
            g.dff,
            g.cells().to_vec(),
        );
        let r = lint_library(&bad);
        assert!(fired(&r, Rule::RailOrder), "{r}");
    }

    #[test]
    fn lb004_rail_convention_fires() {
        let g = gridded_lib();
        // An "organic" library without the negative bias rail.
        let bad = CellLibrary::from_cells(
            "no-bias",
            ProcessKind::Organic,
            5.0,
            0.0,
            g.wire,
            g.dff,
            g.cells().to_vec(),
        );
        let r = lint_library(&bad);
        assert!(fired(&r, Rule::RailConvention), "{r}");
    }

    #[test]
    fn lb005_non_positive_cell_scalar_fires() {
        let bad = with_cell(|c| {
            if c.kind == CellKind::Dff {
                c.input_cap = 0.0;
            }
        });
        let r = lint_library(&bad);
        assert!(fired(&r, Rule::NonPositiveCellScalar), "{r}");
    }

    #[test]
    fn lb006_bad_dff_timing_fires() {
        let g = gridded_lib();
        let bad = CellLibrary::from_cells(
            "bad-dff",
            g.process,
            g.vdd,
            g.vss,
            g.wire,
            DffTiming {
                setup: 0.0,
                hold: -1.0e-12,
                clk_to_q: 1.0e-11,
            },
            g.cells().to_vec(),
        );
        let r = lint_library(&bad);
        assert!(fired(&r, Rule::BadDffTiming), "{r}");
    }

    #[test]
    fn lb007_degenerate_table_fires_on_synthetic() {
        let r = lint_library(&lib());
        assert!(fired(&r, Rule::DegenerateTable), "{r}");
        // Info severity only — synthetic libraries are legitimate.
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn lb008_axis_mismatch_fires() {
        let bad = with_cell(|c| {
            if c.kind == CellKind::Inv {
                c.timing.out_slew = NldmTable::new(
                    vec![1.0e-12, 1.0e-10],
                    vec![1.0e-15, 1.0e-13],
                    vec![vec![1.0e-12, 2.0e-12], vec![2.0e-12, 3.0e-12]],
                );
            }
        });
        let r = lint_library(&bad);
        assert!(fired(&r, Rule::AxisMismatch), "{r}");
    }

    #[test]
    fn lb009_negative_drive_resistance_fires() {
        let bad = with_cell(|c| {
            if c.kind == CellKind::Inv {
                // Strictly decreasing with load everywhere: also LB001, but
                // the centre slope check must fire too.
                c.timing.delay_rise = NldmTable::new(
                    c.timing.delay_rise.slews().to_vec(),
                    c.timing.delay_rise.loads().to_vec(),
                    vec![
                        vec![7.0e-12, 5.0e-12, 4.0e-12],
                        vec![5.0e-12, 3.0e-12, 2.0e-12],
                        vec![4.0e-12, 2.0e-12, 1.0e-12],
                    ],
                );
                c.timing.delay_fall = c.timing.delay_rise.clone();
            }
        });
        let r = lint_library(&bad);
        assert!(fired(&r, Rule::NegativeDriveResistance), "{r}");
    }

    #[test]
    fn healthy_gridded_library_is_clean() {
        let r = lint_library(&gridded_lib());
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.count(Severity::Warning), 0, "{r}");
    }

    // ---- device-level rules ------------------------------------------------

    #[test]
    fn dv001_bad_geometry_fires() {
        let mut p = TftParams::pentacene();
        p.ci = 0.0;
        let r = lint_device(&p);
        assert!(fired(&r, Rule::BadGeometry), "{r}");
        assert!(!r.is_clean());
    }

    #[test]
    fn dv002_mobility_out_of_range_fires() {
        let mut p = TftParams::pentacene();
        p.mu0 = 1.0; // 10^4 cm²/V·s: graphene, not pentacene.
        let r = lint_device(&p);
        assert!(fired(&r, Rule::MobilityOutOfRange), "{r}");
    }

    #[test]
    fn dv003_vt_out_of_range_fires() {
        let mut p = TftParams::pentacene();
        p.vt0 = -2.0;
        let r = lint_device(&p);
        assert!(fired(&r, Rule::VtOutOfRange), "{r}");
    }

    #[test]
    fn dv004_bad_subthreshold_slope_fires() {
        let mut p = TftParams::pentacene();
        p.subthreshold_n = 0.5;
        let r = lint_device(&p);
        assert!(fired(&r, Rule::BadSubthresholdSlope), "{r}");
    }

    #[test]
    fn dv005_bad_off_current_fires() {
        let mut p = TftParams::pentacene();
        p.i_off = 1.0e-3;
        let r = lint_device(&p);
        assert!(fired(&r, Rule::BadOffCurrent), "{r}");
    }

    #[test]
    fn paper_devices_are_plausible() {
        for p in [
            TftParams::pentacene(),
            TftParams::dntt(),
            TftParams::pentacene().aged(1.0),
        ] {
            let r = lint_device(&p);
            assert!(r.is_clean(), "{r}");
            assert_eq!(r.count(Severity::Warning), 0, "{r}");
        }
    }
}
