//! Property tests for the determinism-auditor's Rust lexer
//! ([`bdc_lint::lex`]): the scanner runs over every source file in the
//! workspace, so it must be total.
//!
//! Two contracts are pinned on arbitrary byte soup (lossily decoded, the
//! same way `lint_workspace` ingests files):
//!
//! * **No panic** — any input lexes to completion; hostile fragments
//!   (unterminated strings, half-open comments, stray quotes, raw-string
//!   hashes, non-ASCII) never index out of bounds or split a UTF-8
//!   boundary.
//! * **Span round trip** — the emitted token spans exactly partition the
//!   input: contiguous, non-empty, in order, and concatenating the span
//!   slices rebuilds the source byte-for-byte.

use proptest::prelude::*;

use bdc_lint::{lex, lint_source, SourceClass};

/// Asserts the partition invariant and rebuilds the source from spans.
fn check_round_trip(src: &str) -> Result<(), TestCaseError> {
    let tokens = lex(src);
    let mut at = 0usize;
    let mut rebuilt = String::with_capacity(src.len());
    for t in &tokens {
        prop_assert_eq!(t.start, at, "gap or overlap before token at {}", t.start);
        prop_assert!(t.end > t.start, "empty token span at {}", t.start);
        rebuilt.push_str(&src[t.start..t.end]);
        at = t.end;
    }
    prop_assert_eq!(at, src.len(), "tokens stop short of EOF");
    prop_assert_eq!(rebuilt.as_str(), src);
    Ok(())
}

proptest! {
    #[test]
    fn lexer_round_trips_arbitrary_byte_soup(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Ingest exactly as lint_workspace does: lossy UTF-8 decode.
        let src = String::from_utf8_lossy(&bytes).into_owned();
        check_round_trip(&src)?;
    }

    #[test]
    fn lexer_round_trips_rust_flavoured_soup(parts in proptest::collection::vec(0usize..20, 0..64)) {
        // Byte soup rarely opens the interesting scanner states, so also
        // splice together Rust-flavoured fragments: quotes, raw-string
        // heads, comment openers, lifetimes — in arbitrary order, the
        // later fragments landing inside whatever state the earlier ones
        // left open.
        const FRAGMENTS: &[&str] = &[
            "\"", "r#\"", "br##\"", "'", "'a", "'\\''", "/*", "*/", "//",
            "\n", "b\"\\x", "0x1f", "1.0e-", "ident", "r#type", "#[cfg(test)]",
            "日本語", "\\", "\"#", "1_000",
        ];
        let src: String = parts.iter().map(|&i| FRAGMENTS[i % FRAGMENTS.len()]).collect();
        check_round_trip(&src)?;
    }

    #[test]
    fn lint_source_never_panics_on_byte_soup(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // The full per-file pass (allow parsing + hazard scan) is total
        // too, whatever class the file lands in.
        let src = String::from_utf8_lossy(&bytes).into_owned();
        for class in [SourceClass::Render, SourceClass::Serve, SourceClass::Tooling] {
            let _ = lint_source("soup.rs", class, &src);
        }
    }
}
