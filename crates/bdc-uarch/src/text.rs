//! Textual Org32 assembly: disassembly and a line-oriented parser.
//!
//! Programs can be written as text with labels, assembled to a
//! [`Program`], and disassembled back — useful for inspecting workload
//! kernels and writing programs outside Rust.
//!
//! Syntax (one instruction or directive per line; `;` starts a comment):
//!
//! ```text
//! .word 100 42        ; seed memory[100] = 42
//! start:
//!     li   r1, 5      ; pseudo-instruction (addi or lui+ori)
//!     addi r2, r1, -3
//!     beq  r1, r2, done
//!     jal  r15, start
//! done:
//!     halt
//! ```

use std::collections::BTreeMap;
use std::fmt;

use crate::asm::{Asm, Program};
use crate::isa::{Instr, Op, Reg};

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (rd, rs1, rs2, imm) = (self.rd.0, self.rs1.0, self.rs2.0, self.imm);
        match self.op {
            Op::Add => write!(f, "add r{rd}, r{rs1}, r{rs2}"),
            Op::Sub => write!(f, "sub r{rd}, r{rs1}, r{rs2}"),
            Op::And => write!(f, "and r{rd}, r{rs1}, r{rs2}"),
            Op::Or => write!(f, "or r{rd}, r{rs1}, r{rs2}"),
            Op::Xor => write!(f, "xor r{rd}, r{rs1}, r{rs2}"),
            Op::Slt => write!(f, "slt r{rd}, r{rs1}, r{rs2}"),
            Op::Sll => write!(f, "sll r{rd}, r{rs1}, r{rs2}"),
            Op::Srl => write!(f, "srl r{rd}, r{rs1}, r{rs2}"),
            Op::Sra => write!(f, "sra r{rd}, r{rs1}, r{rs2}"),
            Op::Mul => write!(f, "mul r{rd}, r{rs1}, r{rs2}"),
            Op::Div => write!(f, "div r{rd}, r{rs1}, r{rs2}"),
            Op::Rem => write!(f, "rem r{rd}, r{rs1}, r{rs2}"),
            Op::Addi => write!(f, "addi r{rd}, r{rs1}, {imm}"),
            Op::Andi => write!(f, "andi r{rd}, r{rs1}, {imm}"),
            Op::Ori => write!(f, "ori r{rd}, r{rs1}, {imm}"),
            Op::Xori => write!(f, "xori r{rd}, r{rs1}, {imm}"),
            Op::Slti => write!(f, "slti r{rd}, r{rs1}, {imm}"),
            Op::Lui => write!(f, "lui r{rd}, {imm}"),
            Op::Lw => write!(f, "lw r{rd}, {imm}(r{rs1})"),
            Op::Sw => write!(f, "sw r{rs2}, {imm}(r{rs1})"),
            Op::Beq => write!(f, "beq r{rs1}, r{rs2}, {imm}"),
            Op::Bne => write!(f, "bne r{rs1}, r{rs2}, {imm}"),
            Op::Blt => write!(f, "blt r{rs1}, r{rs2}, {imm}"),
            Op::Bge => write!(f, "bge r{rs1}, r{rs2}, {imm}"),
            Op::Jal => write!(f, "jal r{rd}, {imm}"),
            Op::Jalr => write!(f, "jalr r{rd}, r{rs1}, {imm}"),
            Op::Halt => write!(f, "halt"),
        }
    }
}

/// Disassembles a program (one instruction per line, PC-prefixed).
pub fn disassemble(program: &Program) -> String {
    program
        .code
        .iter()
        .enumerate()
        .map(|(pc, i)| format!("{pc:>6}: {i}\n"))
        .collect()
}

/// An assembly parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let t = tok.trim().trim_end_matches(',');
    let idx = t
        .strip_prefix('r')
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|&n| n < 16)
        .ok_or_else(|| AsmError {
            line,
            message: format!("bad register {t:?}"),
        })?;
    Ok(Reg(idx))
}

fn parse_imm(tok: &str, line: usize) -> Result<i32, AsmError> {
    let t = tok.trim().trim_end_matches(',');
    let parsed = if let Some(hex) = t.strip_prefix("0x") {
        i64::from_str_radix(hex, 16).ok()
    } else if let Some(hex) = t.strip_prefix("-0x") {
        i64::from_str_radix(hex, 16).ok().map(|v| -v)
    } else {
        t.parse::<i64>().ok()
    };
    parsed
        .and_then(|v| i32::try_from(v).ok())
        .ok_or_else(|| AsmError {
            line,
            message: format!("bad immediate {t:?}"),
        })
}

/// Parses `imm(rN)` memory-operand syntax.
fn parse_mem(tok: &str, line: usize) -> Result<(i32, Reg), AsmError> {
    let t = tok.trim().trim_end_matches(',');
    let open = t.find('(').ok_or_else(|| AsmError {
        line,
        message: format!("expected imm(reg), got {t:?}"),
    })?;
    let close = t.len() - 1;
    if !t.ends_with(')') {
        return Err(AsmError {
            line,
            message: format!("expected imm(reg), got {t:?}"),
        });
    }
    let imm = if open == 0 {
        0
    } else {
        parse_imm(&t[..open], line)?
    };
    let reg = parse_reg(&t[open + 1..close], line)?;
    Ok((imm, reg))
}

/// Assembles Org32 text into a [`Program`].
///
/// # Errors
/// Returns [`AsmError`] with the offending line for syntax problems and
/// unknown labels.
pub fn assemble_text(source: &str) -> Result<Program, AsmError> {
    let mut a = Asm::new();
    let mut labels: BTreeMap<String, crate::asm::Label> = BTreeMap::new();
    let mut label_of =
        |a: &mut Asm, name: &str| *labels.entry(name.to_string()).or_insert_with(|| a.label());
    let mut bound: Vec<String> = Vec::new();

    for (ln0, raw) in source.lines().enumerate() {
        let line = ln0 + 1;
        let text = raw.split(';').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        // Labels (possibly followed by an instruction on the same line).
        let mut rest = text;
        while let Some(colon) = rest.find(':') {
            let (head, tail) = rest.split_at(colon);
            let name = head.trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                break;
            }
            let l = label_of(&mut a, name);
            if bound.contains(&name.to_string()) {
                return Err(AsmError {
                    line,
                    message: format!("label {name:?} bound twice"),
                });
            }
            a.bind(l);
            bound.push(name.to_string());
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        let mut toks = rest.split_whitespace();
        let mn = toks.next().unwrap().to_lowercase();
        let args: Vec<&str> = toks.collect();
        let need = |n: usize| -> Result<(), AsmError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(AsmError {
                    line,
                    message: format!("{mn} expects {n} operands, got {}", args.len()),
                })
            }
        };
        match mn.as_str() {
            ".word" => {
                need(2)?;
                let addr = parse_imm(args[0], line)? as u32;
                let value = parse_imm(args[1], line)? as u32;
                a.data_word(addr, value);
            }
            "add" | "sub" | "and" | "or" | "xor" | "slt" | "sll" | "srl" | "sra" | "mul"
            | "div" | "rem" => {
                need(3)?;
                let rd = parse_reg(args[0], line)?;
                let rs1 = parse_reg(args[1], line)?;
                let rs2 = parse_reg(args[2], line)?;
                match mn.as_str() {
                    "add" => a.add(rd, rs1, rs2),
                    "sub" => a.sub(rd, rs1, rs2),
                    "and" => a.and(rd, rs1, rs2),
                    "or" => a.or(rd, rs1, rs2),
                    "xor" => a.xor(rd, rs1, rs2),
                    "slt" => a.slt(rd, rs1, rs2),
                    "sll" => a.sll(rd, rs1, rs2),
                    "srl" => a.srl(rd, rs1, rs2),
                    "sra" => a.sra(rd, rs1, rs2),
                    "mul" => a.mul(rd, rs1, rs2),
                    "div" => a.div(rd, rs1, rs2),
                    _ => a.rem(rd, rs1, rs2),
                }
            }
            "addi" | "andi" | "ori" | "xori" | "slti" => {
                need(3)?;
                let rd = parse_reg(args[0], line)?;
                let rs1 = parse_reg(args[1], line)?;
                let imm = parse_imm(args[2], line)?;
                match mn.as_str() {
                    "addi" => a.addi(rd, rs1, imm),
                    "andi" => a.andi(rd, rs1, imm),
                    "ori" => a.ori(rd, rs1, imm),
                    "xori" => a.xori(rd, rs1, imm),
                    _ => a.slti(rd, rs1, imm),
                }
            }
            "lui" => {
                need(2)?;
                let rd = parse_reg(args[0], line)?;
                a.lui(rd, parse_imm(args[1], line)?);
            }
            "li" => {
                need(2)?;
                let rd = parse_reg(args[0], line)?;
                a.li(rd, parse_imm(args[1], line)?);
            }
            "lw" => {
                need(2)?;
                let rd = parse_reg(args[0], line)?;
                let (imm, base) = parse_mem(args[1], line)?;
                a.lw(rd, base, imm);
            }
            "sw" => {
                need(2)?;
                let rs = parse_reg(args[0], line)?;
                let (imm, base) = parse_mem(args[1], line)?;
                a.sw(rs, base, imm);
            }
            "beq" | "bne" | "blt" | "bge" => {
                need(3)?;
                let rs1 = parse_reg(args[0], line)?;
                let rs2 = parse_reg(args[1], line)?;
                let l = label_of(&mut a, args[2].trim_end_matches(','));
                match mn.as_str() {
                    "beq" => a.beq(rs1, rs2, l),
                    "bne" => a.bne(rs1, rs2, l),
                    "blt" => a.blt(rs1, rs2, l),
                    _ => a.bge(rs1, rs2, l),
                }
            }
            "jal" => {
                need(2)?;
                let rd = parse_reg(args[0], line)?;
                let l = label_of(&mut a, args[1].trim_end_matches(','));
                a.jal(rd, l);
            }
            "j" => {
                need(1)?;
                let l = label_of(&mut a, args[0].trim_end_matches(','));
                a.j(l);
            }
            "jalr" => {
                need(3)?;
                let rd = parse_reg(args[0], line)?;
                let rs1 = parse_reg(args[1], line)?;
                a.jalr(rd, rs1, parse_imm(args[2], line)?);
            }
            "ret" => {
                need(0)?;
                a.ret();
            }
            "halt" => {
                need(0)?;
                a.halt();
            }
            other => {
                return Err(AsmError {
                    line,
                    message: format!("unknown mnemonic {other:?}"),
                })
            }
        }
    }
    // Unbound labels become assemble-time panics; convert to errors first.
    for (name, _) in labels.iter() {
        if !bound.contains(name) {
            return Err(AsmError {
                line: 0,
                message: format!("label {name:?} never bound"),
            });
        }
    }
    Ok(a.assemble())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::Interp;

    const SUM: &str = r"
        ; sum 1..10 into r2
        li   r1, 1
        li   r2, 0
        li   r3, 11
    loop:
        add  r2, r2, r1
        addi r1, r1, 1
        blt  r1, r3, loop
        halt
    ";

    #[test]
    fn text_program_assembles_and_runs() {
        let p = assemble_text(SUM).expect("assemble");
        let mut m = Interp::new(&p, 64);
        m.run(1000);
        assert!(m.halted());
        assert_eq!(m.regs[2], 55);
    }

    #[test]
    fn memory_syntax_and_data_directive() {
        let src = r"
            .word 100 7
            li  r1, 100
            lw  r2, (r1)
            sw  r2, 4(r1)
            lw  r3, 4(r1)
            halt
        ";
        let p = assemble_text(src).expect("assemble");
        let mut m = Interp::new(&p, 256);
        m.run(100);
        assert_eq!(m.regs[2], 7);
        assert_eq!(m.regs[3], 7);
    }

    #[test]
    fn disassembly_round_trips_through_the_parser() {
        let p = assemble_text(SUM).expect("assemble");
        // Replace label-relative branches: disassembly prints resolved
        // offsets, so re-assembly needs them rewritten; instead check that
        // every printed line re-parses as the identical encoding when fed
        // one at a time with offsets converted to labels — simplest robust
        // check: decode(encode(i)) == i for all and text is non-empty.
        let text = disassemble(&p);
        assert!(text.lines().count() == p.code.len());
        for i in &p.code {
            assert_eq!(Instr::decode(i.encode()), Some(*i));
            assert!(!format!("{i}").is_empty());
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble_text("li r1, 1\n bogus r2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
        let e = assemble_text("addi r99, r0, 1").unwrap_err();
        assert!(e.message.contains("register"));
        let e = assemble_text("j nowhere").unwrap_err();
        assert!(e.message.contains("never bound"));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let e = assemble_text("x:\nx:\nhalt").unwrap_err();
        assert!(e.message.contains("twice"));
    }
}
