//! Simulation statistics.

/// Counters collected by a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Conditional branches retired.
    pub branches: u64,
    /// Mispredicted control instructions.
    pub mispredicts: u64,
    /// Pipeline flushes performed.
    pub flushes: u64,
    /// Instruction-cache hits/misses.
    pub icache: (u64, u64),
    /// Data-cache hits/misses.
    pub dcache: (u64, u64),
    /// Loads retired.
    pub loads: u64,
    /// Stores retired.
    pub stores: u64,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Mispredictions per control-flow instruction.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// Data-cache miss rate.
    pub fn dcache_miss_rate(&self) -> f64 {
        let (h, m) = self.dcache;
        if h + m == 0 {
            0.0
        } else {
            m as f64 / (h + m) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_guard_against_zero() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
        assert_eq!(s.dcache_miss_rate(), 0.0);
    }

    #[test]
    fn ipc_divides() {
        let s = SimStats {
            cycles: 100,
            instructions: 150,
            ..Default::default()
        };
        assert!((s.ipc() - 1.5).abs() < 1e-12);
    }
}
