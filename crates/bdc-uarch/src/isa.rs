//! The Org32 instruction set.
//!
//! A 32-bit RISC with 16 general-purpose registers (`r0` reads zero),
//! word-addressed loads/stores, compare-and-branch, and jump-and-link. The
//! encoding packs `op:6 | rd:4 | rs1:4 | rs2:4 | imm:14` (signed
//! immediate); `Jal` extends the immediate through the `rs1`/`rs2` fields.

/// Architectural register, `R0..R15`; `R0` is hard-wired to zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    /// The zero register.
    pub const ZERO: Reg = Reg(0);
    /// Conventional return-address register.
    pub const RA: Reg = Reg(15);
    /// Conventional stack pointer.
    pub const SP: Reg = Reg(14);

    /// Validated constructor.
    ///
    /// # Panics
    /// Panics if `i > 15`.
    pub fn new(i: u8) -> Reg {
        assert!(i < 16, "register index out of range");
        Reg(i)
    }
}

/// Operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// rd = rs1 + rs2
    Add,
    /// rd = rs1 - rs2
    Sub,
    /// rd = rs1 & rs2
    And,
    /// rd = rs1 | rs2
    Or,
    /// rd = rs1 ^ rs2
    Xor,
    /// rd = (rs1 as i32) < (rs2 as i32)
    Slt,
    /// rd = rs1 << (rs2 & 31)
    Sll,
    /// rd = rs1 >> (rs2 & 31) logical
    Srl,
    /// rd = (rs1 as i32) >> (rs2 & 31)
    Sra,
    /// rd = rs1 + imm
    Addi,
    /// rd = rs1 & imm
    Andi,
    /// rd = rs1 | imm
    Ori,
    /// rd = rs1 ^ imm
    Xori,
    /// rd = (rs1 as i32) < imm
    Slti,
    /// rd = imm << 13 (load upper immediate; 13 so the pairing ORI always
    /// has a non-negative in-range low part)
    Lui,
    /// rd = rs1 * rs2 (low 32)
    Mul,
    /// rd = rs1 / rs2 (signed; x/0 = -1)
    Div,
    /// rd = rs1 % rs2 (signed; x%0 = x)
    Rem,
    /// rd = mem[rs1 + imm]
    Lw,
    /// mem[rs1 + imm] = rs2
    Sw,
    /// if rs1 == rs2: pc += imm
    Beq,
    /// if rs1 != rs2: pc += imm
    Bne,
    /// if (rs1 as i32) < (rs2 as i32): pc += imm
    Blt,
    /// if (rs1 as i32) >= (rs2 as i32): pc += imm
    Bge,
    /// rd = pc + 1; pc += imm (wide immediate)
    Jal,
    /// rd = pc + 1; pc = rs1 + imm
    Jalr,
    /// stop simulation
    Halt,
}

impl Op {
    const ALL: [Op; 27] = [
        Op::Add,
        Op::Sub,
        Op::And,
        Op::Or,
        Op::Xor,
        Op::Slt,
        Op::Sll,
        Op::Srl,
        Op::Sra,
        Op::Addi,
        Op::Andi,
        Op::Ori,
        Op::Xori,
        Op::Slti,
        Op::Lui,
        Op::Mul,
        Op::Div,
        Op::Rem,
        Op::Lw,
        Op::Sw,
        Op::Beq,
        Op::Bne,
        Op::Blt,
        Op::Bge,
        Op::Jal,
        Op::Jalr,
        Op::Halt,
    ];

    fn code(self) -> u32 {
        Op::ALL.iter().position(|&o| o == self).unwrap() as u32
    }

    fn from_code(c: u32) -> Option<Op> {
        Op::ALL.get(c as usize).copied()
    }

    /// Is this a conditional branch?
    pub fn is_branch(self) -> bool {
        matches!(self, Op::Beq | Op::Bne | Op::Blt | Op::Bge)
    }

    /// Is this any control transfer (branch or jump)?
    pub fn is_control(self) -> bool {
        self.is_branch() || matches!(self, Op::Jal | Op::Jalr)
    }

    /// Is this a memory operation?
    pub fn is_mem(self) -> bool {
        matches!(self, Op::Lw | Op::Sw)
    }

    /// Is this a long-latency multiply/divide?
    pub fn is_muldiv(self) -> bool {
        matches!(self, Op::Mul | Op::Div | Op::Rem)
    }
}

/// A decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instr {
    /// Operation.
    pub op: Op,
    /// Destination register.
    pub rd: Reg,
    /// First source register.
    pub rs1: Reg,
    /// Second source register.
    pub rs2: Reg,
    /// Signed immediate (14-bit normally, 22-bit for `Jal`).
    pub imm: i32,
}

impl Instr {
    /// A canonical NOP (`addi r0, r0, 0`).
    pub const NOP: Instr = Instr {
        op: Op::Addi,
        rd: Reg(0),
        rs1: Reg(0),
        rs2: Reg(0),
        imm: 0,
    };

    /// Encodes to a 32-bit word.
    ///
    /// # Panics
    /// Panics if the immediate does not fit the format.
    pub fn encode(&self) -> u32 {
        let op = self.op.code();
        if self.op == Op::Jal {
            assert!(
                self.imm >= -(1 << 21) && self.imm < (1 << 21),
                "jal imm out of range"
            );
            let imm = (self.imm as u32) & 0x3F_FFFF;
            return (op << 26) | ((self.rd.0 as u32) << 22) | imm;
        }
        assert!(
            self.imm >= -(1 << 13) && self.imm < (1 << 13),
            "imm out of range: {}",
            self.imm
        );
        let imm = (self.imm as u32) & 0x3FFF;
        (op << 26)
            | ((self.rd.0 as u32) << 22)
            | ((self.rs1.0 as u32) << 18)
            | ((self.rs2.0 as u32) << 14)
            | imm
    }

    /// Decodes a 32-bit word.
    ///
    /// Returns `None` for an invalid opcode.
    pub fn decode(word: u32) -> Option<Instr> {
        let op = Op::from_code(word >> 26)?;
        let rd = Reg(((word >> 22) & 0xF) as u8);
        if op == Op::Jal {
            let raw = word & 0x3F_FFFF;
            let imm = ((raw << 10) as i32) >> 10;
            return Some(Instr {
                op,
                rd,
                rs1: Reg(0),
                rs2: Reg(0),
                imm,
            });
        }
        let rs1 = Reg(((word >> 18) & 0xF) as u8);
        let rs2 = Reg(((word >> 14) & 0xF) as u8);
        let raw = word & 0x3FFF;
        let imm = ((raw << 18) as i32) >> 18;
        Some(Instr {
            op,
            rd,
            rs1,
            rs2,
            imm,
        })
    }

    /// Registers this instruction reads.
    pub fn sources(&self) -> Vec<Reg> {
        match self.op {
            Op::Lui | Op::Jal => vec![],
            Op::Addi | Op::Andi | Op::Ori | Op::Xori | Op::Slti | Op::Lw | Op::Jalr => {
                vec![self.rs1]
            }
            Op::Halt => vec![],
            _ => vec![self.rs1, self.rs2],
        }
    }

    /// Register this instruction writes, if any (`r0` filtered out).
    pub fn dest(&self) -> Option<Reg> {
        let writes = !matches!(
            self.op,
            Op::Sw | Op::Beq | Op::Bne | Op::Blt | Op::Bge | Op::Halt
        );
        (writes && self.rd != Reg::ZERO).then_some(self.rd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip_all_ops() {
        for &op in &Op::ALL {
            let i = Instr {
                op,
                rd: Reg(5),
                rs1: if op == Op::Jal { Reg(0) } else { Reg(7) },
                rs2: if op == Op::Jal { Reg(0) } else { Reg(12) },
                imm: if op == Op::Jal { -100_000 } else { -7321 },
            };
            let back = Instr::decode(i.encode()).expect("decodes");
            assert_eq!(back, i, "{op:?}");
        }
    }

    #[test]
    fn immediate_sign_extension() {
        let i = Instr {
            op: Op::Addi,
            rd: Reg(1),
            rs1: Reg(2),
            rs2: Reg(0),
            imm: -1,
        };
        assert_eq!(Instr::decode(i.encode()).unwrap().imm, -1);
        let j = Instr {
            op: Op::Jal,
            rd: Reg(15),
            rs1: Reg(0),
            rs2: Reg(0),
            imm: -(1 << 20),
        };
        assert_eq!(Instr::decode(j.encode()).unwrap().imm, -(1 << 20));
    }

    #[test]
    fn invalid_opcode_rejected() {
        assert_eq!(Instr::decode(0xFFFF_FFFF), None);
    }

    #[test]
    fn source_dest_classification() {
        let add = Instr {
            op: Op::Add,
            rd: Reg(3),
            rs1: Reg(1),
            rs2: Reg(2),
            imm: 0,
        };
        assert_eq!(add.sources(), vec![Reg(1), Reg(2)]);
        assert_eq!(add.dest(), Some(Reg(3)));
        let sw = Instr {
            op: Op::Sw,
            rd: Reg(0),
            rs1: Reg(1),
            rs2: Reg(2),
            imm: 4,
        };
        assert_eq!(sw.dest(), None);
        let to_zero = Instr {
            op: Op::Add,
            rd: Reg(0),
            rs1: Reg(1),
            rs2: Reg(2),
            imm: 0,
        };
        assert_eq!(to_zero.dest(), None);
    }

    #[test]
    #[should_panic(expected = "imm out of range")]
    fn oversized_immediate_panics() {
        let i = Instr {
            op: Op::Addi,
            rd: Reg(1),
            rs1: Reg(1),
            rs2: Reg(0),
            imm: 100_000,
        };
        let _ = i.encode();
    }

    #[test]
    fn op_class_predicates() {
        assert!(Op::Beq.is_branch() && Op::Beq.is_control());
        assert!(Op::Jal.is_control() && !Op::Jal.is_branch());
        assert!(Op::Lw.is_mem() && !Op::Lw.is_control());
        assert!(Op::Div.is_muldiv());
    }
}
