//! Core configuration: the pipeline-depth plan and superscalar widths.

use crate::bpred::BpredConfig;
use crate::mem::CacheConfig;

/// How many pipeline stages each front-end function occupies.
///
/// The AnyCore-style baseline is nine stages: Fetch, Decode, Rename,
/// Dispatch, Issue, RegRead, Execute, Writeback, Retire. Deepening the
/// pipeline splits one of the front-end functions into more stages
/// (the paper "cuts the stage which is on the critical path"), which
/// lengthens the branch-misprediction redirect loop and dependent-wakeup
/// distances — the IPC cost that trades against clock frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagePlan {
    /// Fetch stages.
    pub fetch: usize,
    /// Decode stages.
    pub decode: usize,
    /// Rename stages.
    pub rename: usize,
    /// Dispatch stages.
    pub dispatch: usize,
    /// Issue (wakeup/select) stages.
    pub issue: usize,
    /// Register-read stages.
    pub regread: usize,
}

impl StagePlan {
    /// The 9-stage baseline (each function takes one stage; execute,
    /// writeback and retire account for the other three).
    pub fn baseline9() -> Self {
        StagePlan {
            fetch: 1,
            decode: 1,
            rename: 1,
            dispatch: 1,
            issue: 1,
            regread: 1,
        }
    }

    /// Total pipeline stages (front-end + execute + writeback + retire).
    pub fn total_stages(&self) -> usize {
        self.fetch + self.decode + self.rename + self.dispatch + self.issue + self.regread + 3
    }

    /// Cycles from fetching an instruction to its dispatch into the window.
    pub fn front_latency(&self) -> u64 {
        (self.fetch + self.decode + self.rename + self.dispatch) as u64
    }

    /// Extra cycles between issue selection and execution start.
    pub fn issue_to_execute(&self) -> u64 {
        (self.issue - 1 + self.regread - 1) as u64
    }

    /// Splits the named front-end function once, returning the new plan.
    ///
    /// # Panics
    /// Panics for an unknown function name.
    pub fn split(&self, function: &str) -> StagePlan {
        let mut p = *self;
        match function {
            "fetch" => p.fetch += 1,
            "decode" => p.decode += 1,
            "rename" => p.rename += 1,
            "dispatch" => p.dispatch += 1,
            "issue" => p.issue += 1,
            "regread" => p.regread += 1,
            other => panic!("unknown front-end function {other:?}"),
        }
        p
    }
}

/// Full microarchitectural configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Front-end width: instructions fetched/decoded/dispatched per cycle
    /// (the paper sweeps 1–6).
    pub fetch_width: usize,
    /// Back-end ALU pipes (the paper's back-end axis counts these plus the
    /// fixed memory and control pipes, i.e. 3–7 total → 1–5 here).
    pub alu_pipes: usize,
    /// Pipeline-depth plan.
    pub stages: StagePlan,
    /// Issue-queue entries.
    pub iq_size: usize,
    /// Reorder-buffer entries.
    pub rob_size: usize,
    /// Load/store-queue entries.
    pub lsq_size: usize,
    /// Instructions retired per cycle.
    pub commit_width: usize,
    /// Branch predictor.
    pub bpred: BpredConfig,
    /// L1 instruction cache.
    pub icache: CacheConfig,
    /// L1 data cache.
    pub dcache: CacheConfig,
    /// Main-memory access latency (cycles).
    pub mem_latency: u64,
    /// Multiply latency (pipelined).
    pub mul_latency: u64,
    /// Divide latency (unpipelined).
    pub div_latency: u64,
}

impl CoreConfig {
    /// The AnyCore-like baseline: single-issue front end, one ALU pipe
    /// (three execution pipes total with memory and control), nine stages.
    pub fn baseline() -> Self {
        CoreConfig {
            fetch_width: 1,
            alu_pipes: 1,
            stages: StagePlan::baseline9(),
            iq_size: 32,
            rob_size: 64,
            lsq_size: 16,
            commit_width: 2,
            bpred: BpredConfig::default(),
            icache: CacheConfig::l1i(),
            dcache: CacheConfig::l1d(),
            mem_latency: 24,
            mul_latency: 3,
            div_latency: 12,
        }
    }

    /// Baseline with a different width pair: `fetch_width` (1–6) and total
    /// back-end execution pipes (3–7 → `alu_pipes` = pipes − 2).
    ///
    /// # Panics
    /// Panics if `backend_pipes < 3`.
    pub fn with_widths(fetch_width: usize, backend_pipes: usize) -> Self {
        assert!(
            backend_pipes >= 3,
            "back end needs mem + ctrl + ≥1 ALU pipes"
        );
        CoreConfig {
            fetch_width,
            alu_pipes: backend_pipes - 2,
            commit_width: (fetch_width + 1).max(2),
            ..Self::baseline()
        }
    }

    /// Total execution pipes (ALU + memory + control), the paper's
    /// back-end-width axis.
    pub fn backend_pipes(&self) -> usize {
        self.alu_pipes + 2
    }

    /// Total pipeline stages.
    pub fn total_stages(&self) -> usize {
        self.stages.total_stages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_nine_stages() {
        let c = CoreConfig::baseline();
        assert_eq!(c.total_stages(), 9);
        assert_eq!(c.backend_pipes(), 3);
        assert_eq!(c.stages.front_latency(), 4);
        assert_eq!(c.stages.issue_to_execute(), 0);
    }

    #[test]
    fn splitting_deepens_the_plan() {
        let p = StagePlan::baseline9()
            .split("fetch")
            .split("issue")
            .split("issue");
        assert_eq!(p.total_stages(), 12);
        assert_eq!(p.front_latency(), 5);
        assert_eq!(p.issue_to_execute(), 2);
    }

    #[test]
    fn width_constructor_maps_paper_axes() {
        let c = CoreConfig::with_widths(4, 6);
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.alu_pipes, 4);
        assert_eq!(c.backend_pipes(), 6);
    }

    #[test]
    #[should_panic(expected = "back end needs")]
    fn rejects_too_narrow_backend() {
        let _ = CoreConfig::with_widths(1, 2);
    }
}
