//! A programmatic assembler for Org32.
//!
//! Workload kernels are built in Rust with labels and convenience
//! mnemonics; `assemble` resolves branch/jump offsets and produces a
//! [`Program`].

use std::collections::BTreeMap;

use crate::isa::{Instr, Op, Reg};

/// A label handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// An assembled program: code plus initial data image.
#[derive(Debug, Clone)]
pub struct Program {
    /// Instruction words, starting at PC 0.
    pub code: Vec<Instr>,
    /// Initial memory contents: `(word_address, value)`.
    pub data: Vec<(u32, u32)>,
}

impl Program {
    /// Program length in instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}

enum Pending {
    Ready(Instr),
    Branch {
        op: Op,
        rs1: Reg,
        rs2: Reg,
        target: Label,
    },
    Jal {
        rd: Reg,
        target: Label,
    },
}

/// The assembler.
#[derive(Default)]
pub struct Asm {
    items: Vec<Pending>,
    labels: Vec<Option<usize>>,
    data: Vec<(u32, u32)>,
}

impl std::fmt::Debug for Asm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Asm({} instrs, {} labels)",
            self.items.len(),
            self.labels.len()
        )
    }
}

impl Asm {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Asm::default()
    }

    /// Allocates an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.items.len());
    }

    /// Current instruction index.
    pub fn here(&self) -> usize {
        self.items.len()
    }

    /// Seeds a word of initial memory.
    pub fn data_word(&mut self, word_addr: u32, value: u32) {
        self.data.push((word_addr, value));
    }

    fn push(&mut self, i: Instr) {
        self.items.push(Pending::Ready(i));
    }

    // ---- mnemonics ---------------------------------------------------------

    /// rd = rs1 + rs2
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(Instr {
            op: Op::Add,
            rd,
            rs1,
            rs2,
            imm: 0,
        });
    }

    /// rd = rs1 - rs2
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(Instr {
            op: Op::Sub,
            rd,
            rs1,
            rs2,
            imm: 0,
        });
    }

    /// rd = rs1 & rs2
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(Instr {
            op: Op::And,
            rd,
            rs1,
            rs2,
            imm: 0,
        });
    }

    /// rd = rs1 | rs2
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(Instr {
            op: Op::Or,
            rd,
            rs1,
            rs2,
            imm: 0,
        });
    }

    /// rd = rs1 ^ rs2
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(Instr {
            op: Op::Xor,
            rd,
            rs1,
            rs2,
            imm: 0,
        });
    }

    /// rd = (rs1 < rs2) signed
    pub fn slt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(Instr {
            op: Op::Slt,
            rd,
            rs1,
            rs2,
            imm: 0,
        });
    }

    /// rd = rs1 << rs2
    pub fn sll(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(Instr {
            op: Op::Sll,
            rd,
            rs1,
            rs2,
            imm: 0,
        });
    }

    /// rd = rs1 >> rs2 (logical)
    pub fn srl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(Instr {
            op: Op::Srl,
            rd,
            rs1,
            rs2,
            imm: 0,
        });
    }

    /// rd = rs1 >> rs2 (arithmetic)
    pub fn sra(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(Instr {
            op: Op::Sra,
            rd,
            rs1,
            rs2,
            imm: 0,
        });
    }

    /// rd = rs1 * rs2
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(Instr {
            op: Op::Mul,
            rd,
            rs1,
            rs2,
            imm: 0,
        });
    }

    /// rd = rs1 / rs2
    pub fn div(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(Instr {
            op: Op::Div,
            rd,
            rs1,
            rs2,
            imm: 0,
        });
    }

    /// rd = rs1 % rs2
    pub fn rem(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(Instr {
            op: Op::Rem,
            rd,
            rs1,
            rs2,
            imm: 0,
        });
    }

    /// rd = rs1 + imm
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.push(Instr {
            op: Op::Addi,
            rd,
            rs1,
            rs2: Reg::ZERO,
            imm,
        });
    }

    /// rd = rs1 & imm
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.push(Instr {
            op: Op::Andi,
            rd,
            rs1,
            rs2: Reg::ZERO,
            imm,
        });
    }

    /// rd = rs1 | imm
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.push(Instr {
            op: Op::Ori,
            rd,
            rs1,
            rs2: Reg::ZERO,
            imm,
        });
    }

    /// rd = rs1 ^ imm
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.push(Instr {
            op: Op::Xori,
            rd,
            rs1,
            rs2: Reg::ZERO,
            imm,
        });
    }

    /// rd = (rs1 < imm) signed
    pub fn slti(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.push(Instr {
            op: Op::Slti,
            rd,
            rs1,
            rs2: Reg::ZERO,
            imm,
        });
    }

    /// rd = imm << 13
    pub fn lui(&mut self, rd: Reg, imm: i32) {
        self.push(Instr {
            op: Op::Lui,
            rd,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            imm,
        });
    }

    /// Loads a constant via ADDI or LUI + ORI.
    ///
    /// # Panics
    /// Panics if `value` needs more than 26 significant bits
    /// (±2²⁶ — comfortably beyond any workload constant).
    pub fn li(&mut self, rd: Reg, value: i32) {
        if (-(1 << 13)..(1 << 13)).contains(&value) {
            self.addi(rd, Reg::ZERO, value);
            return;
        }
        assert!(
            (-(1 << 26)..(1 << 26)).contains(&value),
            "li constant {value} out of range"
        );
        let hi = value >> 13;
        let lo = (value as u32 & 0x1FFF) as i32;
        self.lui(rd, hi);
        if lo != 0 {
            self.ori(rd, rd, lo);
        }
    }

    /// rd = mem[rs1 + imm]
    pub fn lw(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.push(Instr {
            op: Op::Lw,
            rd,
            rs1,
            rs2: Reg::ZERO,
            imm,
        });
    }

    /// mem[rs1 + imm] = rs2
    pub fn sw(&mut self, rs2: Reg, rs1: Reg, imm: i32) {
        self.push(Instr {
            op: Op::Sw,
            rd: Reg::ZERO,
            rs1,
            rs2,
            imm,
        });
    }

    /// if rs1 == rs2 goto target
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.items.push(Pending::Branch {
            op: Op::Beq,
            rs1,
            rs2,
            target,
        });
    }

    /// if rs1 != rs2 goto target
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.items.push(Pending::Branch {
            op: Op::Bne,
            rs1,
            rs2,
            target,
        });
    }

    /// if rs1 < rs2 (signed) goto target
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.items.push(Pending::Branch {
            op: Op::Blt,
            rs1,
            rs2,
            target,
        });
    }

    /// if rs1 >= rs2 (signed) goto target
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.items.push(Pending::Branch {
            op: Op::Bge,
            rs1,
            rs2,
            target,
        });
    }

    /// rd = return address; goto target
    pub fn jal(&mut self, rd: Reg, target: Label) {
        self.items.push(Pending::Jal { rd, target });
    }

    /// Unconditional jump (JAL with r0 destination).
    pub fn j(&mut self, target: Label) {
        self.jal(Reg::ZERO, target);
    }

    /// rd = return address; pc = rs1 + imm (function return: `jalr r0, ra, 0`)
    pub fn jalr(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.push(Instr {
            op: Op::Jalr,
            rd,
            rs1,
            rs2: Reg::ZERO,
            imm,
        });
    }

    /// Function return.
    pub fn ret(&mut self) {
        self.jalr(Reg::ZERO, Reg::RA, 0);
    }

    /// Stop the simulation.
    pub fn halt(&mut self) {
        self.push(Instr {
            op: Op::Halt,
            rd: Reg::ZERO,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            imm: 0,
        });
    }

    /// Resolves labels and produces the program.
    ///
    /// # Panics
    /// Panics on unbound labels or out-of-range offsets.
    pub fn assemble(self) -> Program {
        let resolve = |l: Label| -> usize { self.labels[l.0].expect("unbound label") };
        let code = self
            .items
            .iter()
            .enumerate()
            .map(|(pc, item)| match item {
                Pending::Ready(i) => *i,
                Pending::Branch {
                    op,
                    rs1,
                    rs2,
                    target,
                } => {
                    let off = resolve(*target) as i64 - pc as i64;
                    Instr {
                        op: *op,
                        rd: Reg::ZERO,
                        rs1: *rs1,
                        rs2: *rs2,
                        imm: i32::try_from(off).expect("branch offset fits"),
                    }
                }
                Pending::Jal { rd, target } => {
                    let off = resolve(*target) as i64 - pc as i64;
                    Instr {
                        op: Op::Jal,
                        rd: *rd,
                        rs1: Reg::ZERO,
                        rs2: Reg::ZERO,
                        imm: i32::try_from(off).expect("jump offset fits"),
                    }
                }
            })
            .collect();
        Program {
            code,
            data: self.data,
        }
    }

    /// Assembles and also returns a map from label to PC (for tests).
    pub fn assemble_with_labels(self) -> (Program, BTreeMap<usize, usize>) {
        let labels: BTreeMap<usize, usize> = self
            .labels
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.map(|pc| (i, pc)))
            .collect();
        (self.assemble(), labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = Asm::new();
        let top = a.label();
        let done = a.label();
        a.bind(top);
        a.addi(Reg(1), Reg(1), 1);
        a.beq(Reg(1), Reg(2), done);
        a.j(top);
        a.bind(done);
        a.halt();
        let p = a.assemble();
        assert_eq!(p.code.len(), 4);
        // beq at pc 1 targets pc 3: offset +2.
        assert_eq!(p.code[1].imm, 2);
        // j at pc 2 targets pc 0: offset -2.
        assert_eq!(p.code[2].imm, -2);
    }

    #[test]
    fn li_handles_large_and_small_constants() {
        let mut a = Asm::new();
        a.li(Reg(1), 5);
        a.li(Reg(2), -3);
        a.li(Reg(3), 1_000_000);
        a.halt();
        let p = a.assemble();
        // small constants are a single addi.
        assert_eq!(p.code[0].op, Op::Addi);
        assert_eq!(p.code[1].op, Op::Addi);
        assert_eq!(p.code[1].imm, -3);
        // large constant uses lui+ori.
        assert_eq!(p.code[2].op, Op::Lui);
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut a = Asm::new();
        let l = a.label();
        a.j(l);
        let _ = a.assemble();
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut a = Asm::new();
        let l = a.label();
        a.bind(l);
        a.bind(l);
    }

    #[test]
    fn data_words_carried_through() {
        let mut a = Asm::new();
        a.data_word(100, 42);
        a.halt();
        let p = a.assemble();
        assert_eq!(p.data, vec![(100, 42)]);
    }
}
