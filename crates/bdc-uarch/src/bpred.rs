//! Branch prediction: gshare + branch target buffer + return-address stack.

use crate::isa::{Op, Reg};

/// Direction-predictor family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BpredKind {
    /// Global-history-XOR-PC two-bit counters (the default).
    #[default]
    Gshare,
    /// PC-indexed two-bit counters, no global history.
    Bimodal,
    /// Always predict not-taken (the pessimistic ablation bound).
    StaticNotTaken,
}

/// Predictor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BpredConfig {
    /// Direction predictor family.
    pub kind: BpredKind,
    /// log2 of the pattern-history table entries.
    pub gshare_bits: u32,
    /// BTB entries (direct mapped).
    pub btb_entries: usize,
    /// Return-address stack depth.
    pub ras_depth: usize,
}

impl Default for BpredConfig {
    fn default() -> Self {
        BpredConfig {
            kind: BpredKind::Gshare,
            gshare_bits: 12,
            btb_entries: 512,
            ras_depth: 8,
        }
    }
}

/// A fetch-time prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted taken?
    pub taken: bool,
    /// Predicted target (valid when `taken`).
    pub target: u32,
    /// PHT index used at prediction time (train the same entry at update).
    pub pht_index: Option<usize>,
}

/// gshare + BTB + RAS.
#[derive(Debug, Clone)]
pub struct Bpred {
    cfg: BpredConfig,
    pht: Vec<u8>,
    ghr: u64,
    btb: Vec<Option<(u32, u32, bool)>>, // (pc_tag, target, is_return)
    ras: Vec<u32>,
}

impl Bpred {
    /// Creates a predictor.
    pub fn new(cfg: BpredConfig) -> Self {
        Bpred {
            cfg,
            pht: vec![2; 1 << cfg.gshare_bits], // weakly taken
            ghr: 0,
            btb: vec![None; cfg.btb_entries],
            ras: Vec::new(),
        }
    }

    fn pht_index(&self, pc: u32) -> usize {
        let mask = (1u64 << self.cfg.gshare_bits) - 1;
        match self.cfg.kind {
            BpredKind::Gshare => ((pc as u64 ^ self.ghr) & mask) as usize,
            BpredKind::Bimodal | BpredKind::StaticNotTaken => (pc as u64 & mask) as usize,
        }
    }

    /// Predicts a control instruction at `pc`. `op` guides the structure
    /// used (conditional → gshare, `jal` → BTB, return-like `jalr` → RAS).
    pub fn predict(&mut self, pc: u32, op: Op, rd: Reg, rs1: Reg) -> Prediction {
        match op {
            Op::Jal => {
                // Direction always taken; target from BTB (decode would know
                // it, so treat a BTB miss as a 0-penalty unknown only on the
                // first encounter).
                if rd == Reg::RA {
                    self.ras_push(pc + 1);
                }
                let t = self.btb_lookup(pc).unwrap_or(pc + 1);
                Prediction {
                    taken: true,
                    target: t,
                    pht_index: None,
                }
            }
            Op::Jalr => {
                if rd == Reg::ZERO && rs1 == Reg::RA {
                    // Return: pop RAS.
                    let t = self.ras.pop().unwrap_or(pc + 1);
                    Prediction {
                        taken: true,
                        target: t,
                        pht_index: None,
                    }
                } else {
                    if rd == Reg::RA {
                        self.ras_push(pc + 1);
                    }
                    let t = self.btb_lookup(pc).unwrap_or(pc + 1);
                    Prediction {
                        taken: true,
                        target: t,
                        pht_index: None,
                    }
                }
            }
            _ if op.is_branch() => {
                if self.cfg.kind == BpredKind::StaticNotTaken {
                    return Prediction {
                        taken: false,
                        target: pc + 1,
                        pht_index: None,
                    };
                }
                let idx = self.pht_index(pc);
                let taken = self.pht[idx] >= 2;
                let target = if taken {
                    self.btb_lookup(pc).unwrap_or(pc + 1)
                } else {
                    pc + 1
                };
                // Speculatively update global history.
                self.ghr = (self.ghr << 1) | taken as u64;
                Prediction {
                    taken,
                    target,
                    pht_index: Some(idx),
                }
            }
            _ => Prediction {
                taken: false,
                target: pc + 1,
                pht_index: None,
            },
        }
    }

    /// Trains the predictor with the resolved outcome. `pht_index` is the
    /// index the prediction was made with (so the same entry trains).
    pub fn update(
        &mut self,
        pc: u32,
        op: Op,
        taken: bool,
        target: u32,
        mispredicted: bool,
        pht_index: Option<usize>,
    ) {
        if op.is_branch() {
            let idx = pht_index.unwrap_or_else(|| self.pht_index(pc));
            let c = &mut self.pht[idx];
            if taken {
                *c = (*c + 1).min(3);
            } else {
                *c = c.saturating_sub(1);
            }
            if mispredicted {
                // Repair the speculative history bit.
                self.ghr = (self.ghr & !1) | taken as u64;
            }
        }
        if taken {
            self.btb_fill(pc, target, false);
        }
    }

    fn btb_lookup(&self, pc: u32) -> Option<u32> {
        let e = self.btb[pc as usize % self.btb.len()];
        match e {
            Some((tag, target, _)) if tag == pc => Some(target),
            _ => None,
        }
    }

    fn btb_fill(&mut self, pc: u32, target: u32, is_return: bool) {
        let n = self.btb.len();
        self.btb[pc as usize % n] = Some((pc, target, is_return));
    }

    fn ras_push(&mut self, ret: u32) {
        if self.ras.len() == self.cfg.ras_depth {
            self.ras.remove(0);
        }
        self.ras.push(ret);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gshare_learns_a_bias() {
        let mut b = Bpred::new(BpredConfig::default());
        let pc = 100;
        // Train strongly not-taken.
        for _ in 0..8 {
            let p = b.predict(pc, Op::Beq, Reg::ZERO, Reg::ZERO);
            b.update(pc, Op::Beq, false, pc + 1, p.taken, p.pht_index);
        }
        let p = b.predict(pc, Op::Beq, Reg::ZERO, Reg::ZERO);
        assert!(!p.taken);
    }

    #[test]
    fn btb_provides_taken_target() {
        let mut b = Bpred::new(BpredConfig::default());
        let pc = 50;
        // First resolution trains the BTB.
        b.update(pc, Op::Beq, true, 10, true, None);
        for _ in 0..4 {
            let p = b.predict(pc, Op::Beq, Reg::ZERO, Reg::ZERO);
            b.update(pc, Op::Beq, true, 10, !p.taken, p.pht_index);
        }
        let p = b.predict(pc, Op::Beq, Reg::ZERO, Reg::ZERO);
        assert!(p.taken);
        assert_eq!(p.target, 10);
    }

    #[test]
    fn ras_predicts_returns() {
        let mut b = Bpred::new(BpredConfig::default());
        // Call from pc 20 (jal ra, f).
        let _ = b.predict(20, Op::Jal, Reg::RA, Reg::ZERO);
        // Return (jalr r0, ra).
        let p = b.predict(99, Op::Jalr, Reg::ZERO, Reg::RA);
        assert!(p.taken);
        assert_eq!(p.target, 21);
    }

    #[test]
    fn static_not_taken_never_predicts_taken() {
        let cfg = BpredConfig {
            kind: BpredKind::StaticNotTaken,
            ..BpredConfig::default()
        };
        let mut b = Bpred::new(cfg);
        for _ in 0..4 {
            let p = b.predict(77, Op::Beq, Reg::ZERO, Reg::ZERO);
            assert!(!p.taken);
            b.update(77, Op::Beq, true, 10, true, p.pht_index);
        }
        // Jumps still resolve through the BTB/RAS machinery.
        let p = b.predict(20, Op::Jal, Reg::RA, Reg::ZERO);
        assert!(p.taken);
    }

    #[test]
    fn bimodal_learns_per_pc_bias() {
        let cfg = BpredConfig {
            kind: BpredKind::Bimodal,
            ..BpredConfig::default()
        };
        let mut b = Bpred::new(cfg);
        for _ in 0..6 {
            let p = b.predict(300, Op::Bne, Reg::ZERO, Reg::ZERO);
            b.update(300, Op::Bne, false, 301, p.taken, p.pht_index);
        }
        assert!(!b.predict(300, Op::Bne, Reg::ZERO, Reg::ZERO).taken);
    }

    #[test]
    fn nested_calls_return_in_order() {
        let mut b = Bpred::new(BpredConfig::default());
        let _ = b.predict(10, Op::Jal, Reg::RA, Reg::ZERO);
        let _ = b.predict(30, Op::Jal, Reg::RA, Reg::ZERO);
        let p1 = b.predict(99, Op::Jalr, Reg::ZERO, Reg::RA);
        let p2 = b.predict(98, Op::Jalr, Reg::ZERO, Reg::RA);
        assert_eq!(p1.target, 31);
        assert_eq!(p2.target, 11);
    }
}
