//! The cycle-level out-of-order superscalar core.
//!
//! An execute-at-issue model with ROB-based renaming: values live in ROB
//! entries, the map table points architectural registers at in-flight
//! producers, and retirement drains into the architectural register file.
//! The model is *value-accurate* — every retired instruction's effects are
//! the real ISA semantics, which lets the test suite lock-step it against
//! the in-order golden model.
//!
//! Timing behaviour relevant to the paper's experiments:
//!
//! * branch mispredictions flush and refetch, paying the full front-end
//!   depth ([`crate::config::StagePlan::front_latency`]) plus issue/regread stages — the
//!   IPC cost of deeper pipelines (§5.3);
//! * issue bandwidth is limited by the execution pipes (1 memory, 1
//!   control, N ALU) — the IPC benefit of wider back ends (§5.4);
//! * fetch/dispatch bandwidth is the front-end width.

use std::collections::VecDeque;

use crate::asm::Program;
use crate::bpred::{Bpred, Prediction};
use crate::config::CoreConfig;
use crate::func::execute;
use crate::isa::{Instr, Op, Reg};
use crate::mem::{Cache, Memory};
use crate::stats::SimStats;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Exec {
    Waiting,
    Executing,
    Done,
}

#[derive(Debug, Clone)]
struct RobEntry {
    seq: u64,
    pc: u32,
    instr: Instr,
    state: Exec,
    /// Producer seq per source register, captured at rename.
    producers: [Option<u64>; 2],
    /// Destination value once executed.
    value: Option<u32>,
    /// Store address/data once the store executes.
    store: Option<(u32, u32)>,
    /// Cycle the result becomes visible.
    complete_at: u64,
    /// Predicted next PC (for control instructions).
    pred_next: u32,
    /// PHT index used by the prediction, for aligned training.
    pht_index: Option<usize>,
    in_iq: bool,
}

#[derive(Debug, Clone)]
struct FrontEntry {
    pc: u32,
    instr: Instr,
    pred_next: u32,
    pht_index: Option<usize>,
    ready_at: u64,
}

/// The out-of-order core simulator.
#[derive(Debug)]
pub struct OooCore {
    cfg: CoreConfig,
    code: Vec<Instr>,
    mem: Memory,
    arch_regs: [u32; 16],
    bpred: Bpred,
    icache: Cache,
    dcache: Cache,

    cycle: u64,
    next_seq: u64,
    fetch_pc: u32,
    fetch_stall_until: u64,
    fetch_stopped: bool,
    front: VecDeque<FrontEntry>,
    rob: VecDeque<RobEntry>,
    head_seq: u64,
    map: [Option<u64>; 16],
    /// Busy-until cycle per pipe: [mem, ctrl, alu0, alu1, …].
    pipe_busy: Vec<u64>,
    halted: bool,
    stats: SimStats,
}

impl OooCore {
    /// Builds a core for `program` with `mem_words` of memory.
    pub fn new(program: &Program, cfg: CoreConfig, mem_words: usize) -> Self {
        let pipes = 2 + cfg.alu_pipes;
        OooCore {
            code: program.code.clone(),
            mem: Memory::for_program(program, mem_words),
            arch_regs: [0; 16],
            bpred: Bpred::new(cfg.bpred),
            icache: Cache::new(cfg.icache),
            dcache: Cache::new(cfg.dcache),
            cycle: 0,
            next_seq: 0,
            fetch_pc: 0,
            fetch_stall_until: 0,
            fetch_stopped: false,
            front: VecDeque::new(),
            rob: VecDeque::new(),
            head_seq: 0,
            map: [None; 16],
            pipe_busy: vec![0; pipes],
            halted: false,
            cfg,
            stats: SimStats::default(),
        }
    }

    /// Architectural register state (for test comparison).
    pub fn arch_regs(&self) -> &[u32; 16] {
        &self.arch_regs
    }

    /// Data memory (for test comparison).
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Has HALT retired?
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Runs until HALT retires or `max_instructions` retire (or a safety
    /// cycle cap of 200× the instruction budget). Returns statistics.
    pub fn run(&mut self, max_instructions: u64) -> SimStats {
        let cycle_cap = self.cycle + max_instructions.saturating_mul(200) + 10_000;
        let target = self.stats.instructions + max_instructions;
        while !self.halted && self.stats.instructions < target && self.cycle < cycle_cap {
            self.tick();
        }
        self.stats.icache = self.icache.stats();
        self.stats.dcache = self.dcache.stats();
        self.stats
    }

    /// Statistics so far.
    pub fn stats(&self) -> SimStats {
        let mut s = self.stats;
        s.icache = self.icache.stats();
        s.dcache = self.dcache.stats();
        s
    }

    fn rob_index(&self, seq: u64) -> Option<usize> {
        if seq < self.head_seq {
            return None;
        }
        let idx = (seq - self.head_seq) as usize;
        (idx < self.rob.len()).then_some(idx)
    }

    fn tick(&mut self) {
        self.complete();
        self.retire();
        self.issue();
        self.dispatch();
        self.fetch();
        self.cycle += 1;
        self.stats.cycles = self.cycle;
    }

    // ---- writeback / branch resolution -------------------------------------

    fn complete(&mut self) {
        // Collect completions in age order to resolve the oldest mispredict.
        let mut flush_after: Option<(u64, u32)> = None;
        for i in 0..self.rob.len() {
            let cycle = self.cycle;
            let e = &mut self.rob[i];
            if e.state == Exec::Executing && e.complete_at <= cycle {
                e.state = Exec::Done;
                if e.instr.op.is_control() {
                    // Actual next PC computed at execute time was stashed in
                    // `value` for jumps (link) — recompute from captured
                    // operands stored in `store` (reused as (next_pc, 0)).
                    let (actual_next, _) = e.store.expect("control resolved");
                    let taken = actual_next != e.pc.wrapping_add(1);
                    let mispredicted = actual_next != e.pred_next;
                    let (pc, op, pht) = (e.pc, e.instr.op, e.pht_index);
                    self.bpred
                        .update(pc, op, taken, actual_next, mispredicted, pht);
                    if mispredicted {
                        self.stats.mispredicts += 1;
                        let seq = self.rob[i].seq;
                        if flush_after.is_none_or(|(s, _)| seq < s) {
                            flush_after = Some((seq, actual_next));
                        }
                    }
                }
            }
        }
        if let Some((seq, correct_pc)) = flush_after {
            self.flush_younger_than(seq, correct_pc);
        }
    }

    fn flush_younger_than(&mut self, seq: u64, correct_pc: u32) {
        self.stats.flushes += 1;
        while let Some(back) = self.rob.back() {
            if back.seq > seq {
                self.rob.pop_back();
            } else {
                break;
            }
        }
        // Keep ROB seqs contiguous: squashed sequence numbers are reused.
        self.next_seq = seq + 1;
        self.front.clear();
        self.fetch_pc = correct_pc;
        self.fetch_stopped = correct_pc as usize >= self.code.len();
        self.fetch_stall_until = 0;
        // Rebuild the map table from surviving producers.
        self.map = [None; 16];
        for e in &self.rob {
            if let Some(rd) = e.instr.dest() {
                self.map[rd.0 as usize] = Some(e.seq);
            }
        }
    }

    // ---- retire -------------------------------------------------------------

    fn retire(&mut self) {
        for _ in 0..self.cfg.commit_width {
            let Some(head) = self.rob.front() else { break };
            if head.state != Exec::Done {
                break;
            }
            let e = self.rob.pop_front().expect("head exists");
            self.head_seq = e.seq + 1;
            self.stats.instructions += 1;
            match e.instr.op {
                Op::Sw => {
                    let (addr, data) = e.store.expect("store executed");
                    self.mem.write(addr, data);
                    self.dcache.access(addr);
                    self.stats.stores += 1;
                }
                Op::Lw => self.stats.loads += 1,
                Op::Halt => {
                    self.halted = true;
                    return;
                }
                op if op.is_branch() => self.stats.branches += 1,
                _ => {}
            }
            if let Some(rd) = e.instr.dest() {
                self.arch_regs[rd.0 as usize] = e.value.expect("dest value present");
                // Free the mapping if it still points at this instruction.
                if self.map[rd.0 as usize] == Some(e.seq) {
                    self.map[rd.0 as usize] = None;
                }
            }
        }
    }

    // ---- issue / execute ----------------------------------------------------

    /// Reads a source value: from the producer's ROB entry when in flight,
    /// else from the architectural file.
    fn source_value(&self, reg: Reg, producer: Option<u64>) -> u32 {
        if let Some(seq) = producer {
            if let Some(idx) = self.rob_index(seq) {
                return self.rob[idx].value.expect("producer done before issue");
            }
        }
        self.arch_regs[reg.0 as usize]
    }

    fn producer_ready(&self, producer: Option<u64>) -> bool {
        match producer {
            None => true,
            Some(seq) => match self.rob_index(seq) {
                None => true, // retired
                Some(idx) => self.rob[idx].state == Exec::Done,
            },
        }
    }

    fn issue(&mut self) {
        let cycle = self.cycle;
        let extra = self.cfg.stages.issue_to_execute();
        for i in 0..self.rob.len() {
            if self.rob[i].state != Exec::Waiting || !self.rob[i].in_iq {
                continue;
            }
            let instr = self.rob[i].instr;
            let srcs = instr.sources();
            let producers = self.rob[i].producers;
            let ready = srcs
                .iter()
                .enumerate()
                .all(|(k, _)| self.producer_ready(producers[k]));
            if !ready {
                continue;
            }
            // Loads additionally wait for all older stores to resolve.
            if instr.op == Op::Lw {
                let seq = self.rob[i].seq;
                let blocked = self
                    .rob
                    .iter()
                    .take(i)
                    .any(|e| e.seq < seq && e.instr.op == Op::Sw && e.store.is_none());
                if blocked {
                    continue;
                }
            }
            // Find a pipe.
            let pipe = self.find_pipe(instr.op, cycle);
            let Some(pipe) = pipe else { continue };

            // Capture operand values.
            let vals: Vec<u32> = srcs
                .iter()
                .enumerate()
                .map(|(k, &r)| self.source_value(r, producers[k]))
                .collect();
            let mut regs = [0u32; 16];
            for (k, &r) in srcs.iter().enumerate() {
                regs[r.0 as usize] = vals[k];
            }

            let pc = self.rob[i].pc;
            let my_seq = self.rob[i].seq;
            let (latency, value, store, next_pc) = self.execute_op(instr, pc, &regs, my_seq);
            let occupy = if instr.op == Op::Div || instr.op == Op::Rem {
                latency // unpipelined divider
            } else {
                1
            };
            self.pipe_busy[pipe] = cycle + occupy;
            let e = &mut self.rob[i];
            e.state = Exec::Executing;
            e.complete_at = cycle + extra + latency;
            e.value = value;
            e.store = if instr.op.is_control() {
                Some((next_pc, 0)) // stash resolution for `complete`
            } else {
                store
            };
            e.in_iq = false;
        }
    }

    fn find_pipe(&self, op: Op, cycle: u64) -> Option<usize> {
        let candidates: Vec<usize> = if op.is_mem() {
            vec![0]
        } else if op.is_control() {
            vec![1]
        } else {
            // ALU and mul/div ops share pipes 2..: every ALU pipe has a
            // mul/div unit.
            (2..self.pipe_busy.len()).collect()
        };
        candidates.into_iter().find(|&p| self.pipe_busy[p] <= cycle)
    }

    /// Executes the operation functionally and returns
    /// `(latency, dest value, store addr/data, next pc)`. `my_seq` is the
    /// issuing instruction's age, used to restrict store-to-load forwarding
    /// to older stores.
    fn execute_op(
        &mut self,
        instr: Instr,
        pc: u32,
        regs: &[u32; 16],
        my_seq: u64,
    ) -> (u64, Option<u32>, Option<(u32, u32)>, u32) {
        match instr.op {
            Op::Sw => {
                let addr = regs[instr.rs1.0 as usize].wrapping_add(instr.imm as u32);
                let data = regs[instr.rs2.0 as usize];
                (1, None, Some((addr, data)), pc.wrapping_add(1))
            }
            Op::Lw => {
                let addr = regs[instr.rs1.0 as usize].wrapping_add(instr.imm as u32);
                // Forward from the youngest older in-flight store.
                let fwd = self
                    .rob
                    .iter()
                    .rev()
                    .find(|e| {
                        e.instr.op == Op::Sw
                            && e.seq < my_seq
                            && e.store.map(|(a, _)| a == addr).unwrap_or(false)
                    })
                    .and_then(|e| e.store.map(|(_, d)| d));
                match fwd {
                    Some(d) => (self.dcache.hit_latency(), Some(d), None, pc.wrapping_add(1)),
                    None => {
                        let hit = self.dcache.access(addr);
                        let lat = if hit {
                            self.dcache.hit_latency()
                        } else {
                            self.dcache.hit_latency() + self.cfg.mem_latency
                        };
                        (lat, Some(self.mem.read(addr)), None, pc.wrapping_add(1))
                    }
                }
            }
            Op::Mul => {
                let (next, wrote) = execute(instr, pc, regs, &mut self.mem);
                (self.cfg.mul_latency, wrote.map(|(_, v)| v), None, next)
            }
            Op::Div | Op::Rem => {
                let (next, wrote) = execute(instr, pc, regs, &mut self.mem);
                (self.cfg.div_latency, wrote.map(|(_, v)| v), None, next)
            }
            Op::Halt => (1, None, None, pc),
            _ => {
                let (next, wrote) = execute(instr, pc, regs, &mut self.mem);
                (1, wrote.map(|(_, v)| v), None, next)
            }
        }
    }

    // ---- dispatch -----------------------------------------------------------

    fn dispatch(&mut self) {
        let cycle = self.cycle;
        for _ in 0..self.cfg.fetch_width {
            let Some(fe) = self.front.front() else { break };
            if fe.ready_at > cycle {
                break;
            }
            if self.rob.len() >= self.cfg.rob_size {
                break;
            }
            let iq_occupancy = self.rob.iter().filter(|e| e.in_iq).count();
            if iq_occupancy >= self.cfg.iq_size {
                break;
            }
            if fe.instr.op.is_mem() {
                let lsq = self
                    .rob
                    .iter()
                    .filter(|e| e.instr.op.is_mem() && e.state != Exec::Done)
                    .count();
                if lsq >= self.cfg.lsq_size {
                    break;
                }
            }
            let fe = self.front.pop_front().expect("peeked");
            let seq = self.next_seq;
            self.next_seq += 1;
            let srcs = fe.instr.sources();
            let mut producers = [None, None];
            for (k, r) in srcs.iter().enumerate() {
                producers[k] = self.map[r.0 as usize];
            }
            if let Some(rd) = fe.instr.dest() {
                self.map[rd.0 as usize] = Some(seq);
            }
            let state = if fe.instr.op == Op::Halt {
                Exec::Done
            } else {
                Exec::Waiting
            };
            self.rob.push_back(RobEntry {
                seq,
                pc: fe.pc,
                instr: fe.instr,
                state,
                producers,
                value: None,
                store: None,
                complete_at: cycle,
                pred_next: fe.pred_next,
                pht_index: fe.pht_index,
                in_iq: state == Exec::Waiting,
            });
        }
    }

    // ---- fetch --------------------------------------------------------------

    fn fetch(&mut self) {
        if self.fetch_stopped || self.cycle < self.fetch_stall_until {
            return;
        }
        let cap = self.cfg.fetch_width * (self.cfg.stages.front_latency() as usize + 2);
        if self.front.len() >= cap {
            return;
        }
        // One icache access for the fetch group.
        if (self.fetch_pc as usize) < self.code.len() {
            let hit = self.icache.access(self.fetch_pc);
            if !hit {
                self.fetch_stall_until =
                    self.cycle + self.icache.hit_latency() + self.cfg.mem_latency;
                return;
            }
        }
        let ready_at = self.cycle + self.cfg.stages.front_latency();
        for _ in 0..self.cfg.fetch_width {
            let pc = self.fetch_pc;
            if pc as usize >= self.code.len() {
                self.fetch_stopped = true;
                break;
            }
            let instr = self.code[pc as usize];
            let (pred_next, pred_taken, pht_index) = if instr.op.is_control() {
                let p: Prediction = self.bpred.predict(pc, instr.op, instr.rd, instr.rs1);
                (p.target, p.taken, p.pht_index)
            } else {
                (pc + 1, false, None)
            };
            self.front.push_back(FrontEntry {
                pc,
                instr,
                pred_next,
                pht_index,
                ready_at,
            });
            if instr.op == Op::Halt {
                self.fetch_stopped = true;
                break;
            }
            self.fetch_pc = pred_next;
            if pred_taken {
                break; // taken control ends the fetch group
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::func::Interp;

    fn sum_program(n: i32) -> Program {
        let mut a = Asm::new();
        let top = a.label();
        a.li(Reg(1), 1);
        a.li(Reg(2), 0);
        a.li(Reg(3), n + 1);
        a.bind(top);
        a.add(Reg(2), Reg(2), Reg(1));
        a.addi(Reg(1), Reg(1), 1);
        a.blt(Reg(1), Reg(3), top);
        a.halt();
        a.assemble()
    }

    #[test]
    fn matches_golden_model_on_loop() {
        let p = sum_program(100);
        let mut gold = Interp::new(&p, 4096);
        gold.run(10_000);
        let mut core = OooCore::new(&p, CoreConfig::baseline(), 4096);
        let stats = core.run(10_000);
        assert!(core.halted());
        assert_eq!(core.arch_regs()[2], gold.regs[2]);
        assert_eq!(stats.instructions, gold.icount);
    }

    #[test]
    fn ipc_is_positive_and_bounded() {
        let p = sum_program(500);
        let mut core = OooCore::new(&p, CoreConfig::baseline(), 4096);
        let stats = core.run(100_000);
        let ipc = stats.ipc();
        assert!(
            ipc > 0.1 && ipc <= 1.0 + 1e-9,
            "baseline single-issue IPC = {ipc}"
        );
    }

    #[test]
    fn wider_backend_improves_ilp_workload() {
        // Independent ALU chains benefit from more pipes.
        let mut a = Asm::new();
        let top = a.label();
        a.li(Reg(1), 0);
        a.li(Reg(2), 0);
        a.li(Reg(3), 0);
        a.li(Reg(4), 0);
        a.li(Reg(5), 1000);
        a.li(Reg(6), 0);
        a.bind(top);
        for _ in 0..4 {
            a.addi(Reg(1), Reg(1), 1);
            a.addi(Reg(2), Reg(2), 2);
            a.addi(Reg(3), Reg(3), 3);
            a.addi(Reg(4), Reg(4), 4);
        }
        a.addi(Reg(6), Reg(6), 1);
        a.blt(Reg(6), Reg(5), top);
        a.halt();
        let p = a.assemble();

        let narrow = OooCore::new(&p, CoreConfig::with_widths(1, 3), 1 << 14).run(200_000);
        let wide = OooCore::new(&p, CoreConfig::with_widths(4, 6), 1 << 14).run(200_000);
        assert!(
            wide.ipc() > 1.6 * narrow.ipc(),
            "wide {:.2} vs narrow {:.2}",
            wide.ipc(),
            narrow.ipc()
        );
    }

    #[test]
    fn deeper_frontend_hurts_branchy_code() {
        // A data-dependent (hard-to-predict) branch pattern.
        let mut a = Asm::new();
        let top = a.label();
        let skip = a.label();
        a.li(Reg(1), 0); // i
        a.li(Reg(2), 3000); // limit
        a.li(Reg(3), 0x55AA); // lfsr-ish state
        a.li(Reg(4), 0);
        a.bind(top);
        // state = state * 1103515245-ish mixing (cheap): state ^= state << 3; state ^= state >> 5
        a.li(Reg(5), 3);
        a.sll(Reg(6), Reg(3), Reg(5));
        a.xor(Reg(3), Reg(3), Reg(6));
        a.li(Reg(5), 5);
        a.srl(Reg(6), Reg(3), Reg(5));
        a.xor(Reg(3), Reg(3), Reg(6));
        a.andi(Reg(7), Reg(3), 1);
        a.beq(Reg(7), Reg(0), skip);
        a.addi(Reg(4), Reg(4), 1);
        a.bind(skip);
        a.addi(Reg(1), Reg(1), 1);
        a.blt(Reg(1), Reg(2), top);
        a.halt();
        let p = a.assemble();

        let shallow = OooCore::new(&p, CoreConfig::baseline(), 1 << 14).run(300_000);
        let mut deep_cfg = CoreConfig::baseline();
        for _ in 0..6 {
            deep_cfg.stages = deep_cfg.stages.split("fetch");
        }
        assert_eq!(deep_cfg.total_stages(), 15);
        let deep = OooCore::new(&p, deep_cfg, 1 << 14).run(300_000);
        assert!(
            deep.ipc() < 0.92 * shallow.ipc(),
            "deep {:.3} vs shallow {:.3}",
            deep.ipc(),
            shallow.ipc()
        );
        assert!(
            shallow.mispredict_rate() > 0.05,
            "branch pattern should be hard"
        );
    }

    #[test]
    fn store_load_forwarding_is_correct() {
        let mut a = Asm::new();
        a.li(Reg(1), 64);
        a.li(Reg(2), 123);
        a.sw(Reg(2), Reg(1), 0);
        a.lw(Reg(3), Reg(1), 0);
        a.addi(Reg(3), Reg(3), 1);
        a.sw(Reg(3), Reg(1), 0);
        a.lw(Reg(4), Reg(1), 0);
        a.halt();
        let p = a.assemble();
        let mut core = OooCore::new(&p, CoreConfig::with_widths(4, 6), 4096);
        core.run(1000);
        assert_eq!(core.arch_regs()[3], 124);
        assert_eq!(core.arch_regs()[4], 124);
        assert_eq!(core.memory().read(64), 124);
    }

    #[test]
    fn unpipelined_divider_blocks_its_pipe() {
        // Back-to-back divides serialize on the divider; independent adds
        // on other pipes keep flowing.
        let mut a = Asm::new();
        let top = a.label();
        a.li(Reg(1), 1000);
        a.li(Reg(2), 7);
        a.li(Reg(3), 0);
        a.li(Reg(4), 300);
        a.bind(top);
        a.div(Reg(5), Reg(1), Reg(2));
        a.div(Reg(6), Reg(1), Reg(2));
        a.addi(Reg(3), Reg(3), 1);
        a.blt(Reg(3), Reg(4), top);
        a.halt();
        let p = a.assemble();
        let narrow = OooCore::new(&p, CoreConfig::with_widths(2, 3), 4096).run(50_000);
        let wide = OooCore::new(&p, CoreConfig::with_widths(2, 5), 4096).run(50_000);
        // With one ALU pipe the two divides serialize (24+ cycles/iter);
        // with three pipes they overlap.
        assert!(
            wide.ipc() > 1.35 * narrow.ipc(),
            "wide {:.3} vs narrow {:.3}",
            wide.ipc(),
            narrow.ipc()
        );
    }

    #[test]
    fn icache_misses_stall_fetch() {
        // A huge straight-line program (> L1I) streams through the icache.
        let mut a = Asm::new();
        for i in 0..6000 {
            a.addi(Reg(1), Reg(1), i % 7);
        }
        a.halt();
        let p = a.assemble();
        let stats = OooCore::new(&p, CoreConfig::with_widths(4, 6), 1 << 15).run(100_000);
        let (h, m) = stats.icache;
        assert!(m > 100, "icache misses {m} (hits {h})");
        // Straight-line ILP-1-chain code: IPC limited by the dependency
        // chain anyway, but fetch stalls must show up as cycles.
        assert!(stats.cycles > stats.instructions);
    }

    #[test]
    fn commit_width_caps_retirement() {
        // Fully independent ops on a wide machine: IPC approaches but never
        // exceeds the commit width.
        let mut a = Asm::new();
        let top = a.label();
        a.li(Reg(12), 2000);
        a.li(Reg(11), 0);
        a.bind(top);
        for k in 1..=8 {
            a.addi(Reg(k), Reg(k), 1);
        }
        a.addi(Reg(11), Reg(11), 1);
        a.blt(Reg(11), Reg(12), top);
        a.halt();
        let p = a.assemble();
        let cfg = CoreConfig::with_widths(6, 7);
        let commit = cfg.commit_width;
        let stats = OooCore::new(&p, cfg, 4096).run(100_000);
        assert!(stats.ipc() <= commit as f64 + 1e-9);
        assert!(
            stats.ipc() > 0.5 * commit as f64,
            "IPC {:.2} of {commit}",
            stats.ipc()
        );
    }

    #[test]
    fn memory_bound_code_has_low_ipc() {
        // Pointer chase across a footprint much larger than L1D.
        let mut a = Asm::new();
        let n = 8192; // words, 32 KiB > 8 KiB L1D
                      // Build a stride-17 cycle through the array.
        for i in 0..n {
            a.data_word(
                1000 + i,
                (1000 + ((i as i64 + 17) % n as i64) as u32 as i64) as u32,
            );
        }
        let top = a.label();
        a.li(Reg(1), 1000);
        a.li(Reg(2), 0);
        a.li(Reg(3), 4000);
        a.bind(top);
        a.lw(Reg(1), Reg(1), 0);
        a.addi(Reg(2), Reg(2), 1);
        a.blt(Reg(2), Reg(3), top);
        a.halt();
        let p = a.assemble();
        let stats = OooCore::new(&p, CoreConfig::baseline(), 1 << 16).run(100_000);
        assert!(stats.ipc() < 0.4, "pointer chase IPC = {:.3}", stats.ipc());
        assert!(
            stats.dcache_miss_rate() > 0.3,
            "miss rate {:.3}",
            stats.dcache_miss_rate()
        );
    }
}
