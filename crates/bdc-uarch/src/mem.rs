//! Word-addressed memory and set-associative L1 caches.

use crate::asm::Program;

/// Flat word-addressed memory.
#[derive(Debug, Clone)]
pub struct Memory {
    words: Vec<u32>,
}

impl Memory {
    /// Creates a zeroed memory of `words` 32-bit words.
    pub fn new(words: usize) -> Self {
        Memory {
            words: vec![0; words],
        }
    }

    /// Creates a memory seeded with a program's data image.
    pub fn for_program(program: &Program, words: usize) -> Self {
        let mut m = Memory::new(words);
        for &(addr, value) in &program.data {
            m.write(addr, value);
        }
        m
    }

    /// Reads a word (wraps at the memory size).
    pub fn read(&self, word_addr: u32) -> u32 {
        self.words[word_addr as usize % self.words.len()]
    }

    /// Writes a word (wraps at the memory size).
    pub fn write(&mut self, word_addr: u32, value: u32) {
        let n = self.words.len();
        self.words[word_addr as usize % n] = value;
    }

    /// Memory size in words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the memory has no words (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

/// L1 cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total size in bytes.
    pub size_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Hit latency (cycles).
    pub hit_latency: u64,
}

impl CacheConfig {
    /// 8 KiB, 4-way, 32 B lines — the L1I default.
    pub fn l1i() -> Self {
        CacheConfig {
            size_bytes: 8 * 1024,
            line_bytes: 32,
            ways: 4,
            hit_latency: 1,
        }
    }

    /// 8 KiB, 4-way, 32 B lines, 2-cycle — the L1D default.
    pub fn l1d() -> Self {
        CacheConfig {
            size_bytes: 8 * 1024,
            line_bytes: 32,
            ways: 4,
            hit_latency: 2,
        }
    }

    fn sets(&self) -> usize {
        (self.size_bytes / self.line_bytes / self.ways).max(1)
    }
}

/// A set-associative cache with LRU replacement (tags only — data lives in
/// [`Memory`]).
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// `tags[set][way] = (tag, last_use)`.
    tags: Vec<Vec<(u64, u64)>>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        Cache {
            cfg,
            tags: vec![Vec::new(); sets],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses the line containing `word_addr`; returns `true` on hit and
    /// fills on miss.
    pub fn access(&mut self, word_addr: u32) -> bool {
        self.tick += 1;
        let byte = word_addr as u64 * 4;
        let line = byte / self.cfg.line_bytes as u64;
        let set = (line % self.tags.len() as u64) as usize;
        let tag = line / self.tags.len() as u64;
        let ways = &mut self.tags[set];
        if let Some(e) = ways.iter_mut().find(|(t, _)| *t == tag) {
            e.1 = self.tick;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if ways.len() < self.cfg.ways {
            ways.push((tag, self.tick));
        } else {
            let lru = ways
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, last))| *last)
                .map(|(i, _)| i)
                .unwrap();
            ways[lru] = (tag, self.tick);
        }
        false
    }

    /// Hit latency (cycles).
    pub fn hit_latency(&self) -> u64 {
        self.cfg.hit_latency
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Miss rate in [0, 1].
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_read_write_round_trip() {
        let mut m = Memory::new(1024);
        m.write(7, 0xDEAD_BEEF);
        assert_eq!(m.read(7), 0xDEAD_BEEF);
        assert_eq!(m.read(8), 0);
        // Wrapping.
        m.write(1024 + 3, 5);
        assert_eq!(m.read(3), 5);
    }

    #[test]
    fn cache_hits_after_fill() {
        let mut c = Cache::new(CacheConfig::l1d());
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(1)); // same 32 B line (words 0..8)
        assert!(!c.access(8)); // next line
        let (h, m) = c.stats();
        assert_eq!((h, m), (2, 2));
    }

    #[test]
    fn lru_evicts_oldest() {
        // 1-set cache: 2 ways, 32 B lines, 64 B total.
        let cfg = CacheConfig {
            size_bytes: 64,
            line_bytes: 32,
            ways: 2,
            hit_latency: 1,
        };
        let mut c = Cache::new(cfg);
        assert!(!c.access(0)); // line A
        assert!(!c.access(8)); // line B
        assert!(c.access(0)); // A hits, refreshes
        assert!(!c.access(16)); // line C evicts B (LRU)
        assert!(c.access(0)); // A still resident
        assert!(!c.access(8)); // B was evicted
    }

    #[test]
    fn streaming_misses_every_line() {
        let mut c = Cache::new(CacheConfig::l1d());
        for i in 0..1000 {
            c.access(i * 8); // one access per line, footprint >> cache
        }
        assert!(c.miss_rate() > 0.9);
    }
}
