//! A scalar in-order pipeline timing model.
//!
//! The organic microprocessors the paper cites (§6.1, Myny et al.) are tiny
//! in-order machines. This model provides that comparison point for the
//! parallelism extension: a single-issue pipeline with bypassing, blocking
//! caches and a configurable front-end depth, timed by walking the golden
//! interpreter's trace.

use crate::asm::Program;
use crate::bpred::{Bpred, BpredConfig};
use crate::config::StagePlan;
use crate::func::Interp;
use crate::isa::{Op, Reg};
use crate::mem::{Cache, CacheConfig};
use crate::stats::SimStats;

/// Configuration of the in-order core.
#[derive(Debug, Clone, PartialEq)]
pub struct InOrderConfig {
    /// Front-end stage plan (sets the branch-misprediction penalty).
    pub stages: StagePlan,
    /// Branch predictor.
    pub bpred: BpredConfig,
    /// L1 instruction cache.
    pub icache: CacheConfig,
    /// L1 data cache.
    pub dcache: CacheConfig,
    /// Memory latency (cycles).
    pub mem_latency: u64,
    /// Multiply latency.
    pub mul_latency: u64,
    /// Divide latency.
    pub div_latency: u64,
}

impl Default for InOrderConfig {
    fn default() -> Self {
        InOrderConfig {
            stages: StagePlan::baseline9(),
            bpred: BpredConfig::default(),
            icache: CacheConfig::l1i(),
            dcache: CacheConfig::l1d(),
            mem_latency: 24,
            mul_latency: 3,
            div_latency: 12,
        }
    }
}

/// Scalar in-order core: trace-driven timing over the functional model.
#[derive(Debug)]
pub struct InOrderCore {
    interp: Interp,
    cfg: InOrderConfig,
    bpred: Bpred,
    icache: Cache,
    dcache: Cache,
    /// Cycle at which each architectural register's value is available.
    reg_ready: [u64; 16],
    cycle: u64,
    stats: SimStats,
}

impl InOrderCore {
    /// Builds a core for `program` with `mem_words` of memory.
    pub fn new(program: &Program, cfg: InOrderConfig, mem_words: usize) -> Self {
        InOrderCore {
            interp: Interp::new(program, mem_words),
            bpred: Bpred::new(cfg.bpred),
            icache: Cache::new(cfg.icache),
            dcache: Cache::new(cfg.dcache),
            reg_ready: [0; 16],
            cycle: 0,
            stats: SimStats::default(),
            cfg,
        }
    }

    /// Has the program halted?
    pub fn halted(&self) -> bool {
        self.interp.halted()
    }

    /// Architectural registers (for equivalence checks).
    pub fn regs(&self) -> &[u32; 16] {
        &self.interp.regs
    }

    /// Runs until HALT or `max_instructions`; returns statistics.
    pub fn run(&mut self, max_instructions: u64) -> SimStats {
        let mispredict_penalty =
            self.cfg.stages.front_latency() + self.cfg.stages.issue_to_execute() + 2;
        let start = self.interp.icount;
        while self.interp.icount - start < max_instructions {
            let pc = self.interp.pc;
            // Snapshot sources before executing (the step may overwrite rs1).
            let regs_before = self.interp.regs;
            let Some(step) = self.interp.step() else {
                break;
            };
            let instr = step.instr;

            // Fetch: one icache access per instruction (scalar).
            if !self.icache.access(pc) {
                self.cycle += self.icache.hit_latency() + self.cfg.mem_latency;
            }

            // Issue stalls until sources are ready (full bypassing assumed).
            let mut issue = self.cycle + 1;
            for src in instr.sources() {
                issue = issue.max(self.reg_ready[src.0 as usize]);
            }

            // Execute latency.
            let latency = match instr.op {
                Op::Mul => self.cfg.mul_latency,
                Op::Div | Op::Rem => self.cfg.div_latency,
                Op::Lw => {
                    let a = regs_before[instr.rs1.0 as usize].wrapping_add(instr.imm as u32);
                    let hit = self.dcache.access(a);
                    self.stats.loads += 1;
                    if hit {
                        self.dcache.hit_latency()
                    } else {
                        self.dcache.hit_latency() + self.cfg.mem_latency
                    }
                }
                Op::Sw => {
                    let a = regs_before[instr.rs1.0 as usize].wrapping_add(instr.imm as u32);
                    let _ = self.dcache.access(a);
                    self.stats.stores += 1;
                    1
                }
                _ => 1,
            };
            let complete = issue + latency;
            if let Some((rd, _)) = step.wrote {
                if rd != Reg::ZERO {
                    self.reg_ready[rd.0 as usize] = complete;
                }
            }

            // Control flow: consult the predictor; a wrong next-PC costs the
            // front-end refill.
            if instr.op.is_control() {
                let p = self.bpred.predict(pc, instr.op, instr.rd, instr.rs1);
                let taken = step.next_pc != pc.wrapping_add(1);
                let mispredicted = p.target != step.next_pc || p.taken != taken;
                self.bpred
                    .update(pc, instr.op, taken, step.next_pc, mispredicted, p.pht_index);
                if instr.op.is_branch() {
                    self.stats.branches += 1;
                }
                if mispredicted {
                    self.stats.mispredicts += 1;
                    self.stats.flushes += 1;
                    self.cycle = complete + mispredict_penalty;
                } else {
                    self.cycle = issue;
                }
            } else {
                self.cycle = issue;
            }
            self.stats.instructions += 1;
            if self.interp.halted() {
                break;
            }
        }
        self.stats.cycles = self.cycle.max(1);
        self.stats.icache = self.icache.stats();
        self.stats.dcache = self.dcache.stats();
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{build_workload, Workload};
    use crate::{CoreConfig, OooCore};

    #[test]
    fn inorder_ipc_at_most_one() {
        let p = build_workload(Workload::Dhrystone, 50);
        let mut core = InOrderCore::new(&p, InOrderConfig::default(), 1 << 15);
        let stats = core.run(100_000);
        assert!(core.halted());
        assert!(
            stats.ipc() > 0.1 && stats.ipc() <= 1.0,
            "IPC {}",
            stats.ipc()
        );
    }

    #[test]
    fn inorder_matches_functional_state() {
        let p = build_workload(Workload::Gap, 3);
        let mut gold = Interp::new(&p, Workload::Gap.memory_words());
        gold.run(2_000_000);
        let mut core = InOrderCore::new(&p, InOrderConfig::default(), Workload::Gap.memory_words());
        core.run(2_000_000);
        assert_eq!(core.regs(), &gold.regs);
    }

    #[test]
    fn ooo_beats_inorder_on_every_workload() {
        for w in Workload::all() {
            let p = build_workload(w, 20);
            let mut io = InOrderCore::new(&p, InOrderConfig::default(), w.memory_words());
            let s_io = io.run(60_000);
            let mut ooo = OooCore::new(&p, CoreConfig::with_widths(2, 4), w.memory_words());
            let s_ooo = ooo.run(60_000);
            assert!(
                s_ooo.ipc() > s_io.ipc(),
                "{}: OoO {:.3} vs in-order {:.3}",
                w.name(),
                s_ooo.ipc(),
                s_io.ipc()
            );
        }
    }

    #[test]
    fn deeper_front_end_slows_branchy_code() {
        let p = build_workload(Workload::Parser, 400);
        let shallow = InOrderCore::new(&p, InOrderConfig::default(), 1 << 15).run(60_000);
        let mut cfg = InOrderConfig::default();
        for _ in 0..6 {
            cfg.stages = cfg.stages.split("fetch");
        }
        let deep = InOrderCore::new(&p, cfg, 1 << 15).run(60_000);
        assert!(deep.ipc() < shallow.ipc());
    }
}
