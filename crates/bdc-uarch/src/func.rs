//! In-order functional interpreter — the golden model.

use crate::asm::Program;
use crate::isa::{Instr, Op, Reg};
use crate::mem::Memory;

/// One executed instruction's effects (used for trace comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// PC of the executed instruction.
    pub pc: u32,
    /// The instruction.
    pub instr: Instr,
    /// PC after execution.
    pub next_pc: u32,
    /// Destination value written, if any.
    pub wrote: Option<(Reg, u32)>,
}

/// The interpreter state.
#[derive(Debug, Clone)]
pub struct Interp {
    /// Architectural registers (`r0` kept at zero).
    pub regs: [u32; 16],
    /// Program counter (instruction index).
    pub pc: u32,
    /// Data memory.
    pub mem: Memory,
    code: Vec<Instr>,
    halted: bool,
    /// Instructions retired.
    pub icount: u64,
}

impl Interp {
    /// Creates an interpreter for a program with `mem_words` of memory.
    pub fn new(program: &Program, mem_words: usize) -> Self {
        Interp {
            regs: [0; 16],
            pc: 0,
            mem: Memory::for_program(program, mem_words),
            code: program.code.clone(),
            halted: false,
            icount: 0,
        }
    }

    /// Has the program executed HALT (or run off the end)?
    pub fn halted(&self) -> bool {
        self.halted
    }

    fn set_reg(&mut self, r: Reg, v: u32) {
        if r != Reg::ZERO {
            self.regs[r.0 as usize] = v;
        }
    }

    /// Executes one instruction; `None` once halted.
    pub fn step(&mut self) -> Option<Step> {
        if self.halted {
            return None;
        }
        let Some(&instr) = self.code.get(self.pc as usize) else {
            self.halted = true;
            return None;
        };
        let pc = self.pc;
        let (next_pc, wrote) = execute(instr, pc, &self.regs, &mut self.mem);
        if instr.op == Op::Halt {
            self.halted = true;
        }
        if let Some((r, v)) = wrote {
            self.set_reg(r, v);
        }
        self.pc = next_pc;
        self.icount += 1;
        Some(Step {
            pc,
            instr,
            next_pc,
            wrote,
        })
    }

    /// Runs until HALT or `max_instructions`. Returns instructions executed.
    pub fn run(&mut self, max_instructions: u64) -> u64 {
        let start = self.icount;
        while self.icount - start < max_instructions && self.step().is_some() {}
        self.icount - start
    }
}

/// Pure instruction semantics: returns `(next_pc, write)`. Stores mutate
/// `mem` directly. Shared between the interpreter and the OoO core's
/// execute units.
pub fn execute(
    instr: Instr,
    pc: u32,
    regs: &[u32; 16],
    mem: &mut Memory,
) -> (u32, Option<(Reg, u32)>) {
    let r = |x: Reg| regs[x.0 as usize];
    let i = instr.imm;
    let rd = instr.rd;
    let a = r(instr.rs1);
    let b = r(instr.rs2);
    let seq = pc.wrapping_add(1);
    match instr.op {
        Op::Add => (seq, Some((rd, a.wrapping_add(b)))),
        Op::Sub => (seq, Some((rd, a.wrapping_sub(b)))),
        Op::And => (seq, Some((rd, a & b))),
        Op::Or => (seq, Some((rd, a | b))),
        Op::Xor => (seq, Some((rd, a ^ b))),
        Op::Slt => (seq, Some((rd, ((a as i32) < (b as i32)) as u32))),
        Op::Sll => (seq, Some((rd, a.wrapping_shl(b & 31)))),
        Op::Srl => (seq, Some((rd, a.wrapping_shr(b & 31)))),
        Op::Sra => (seq, Some((rd, ((a as i32).wrapping_shr(b & 31)) as u32))),
        Op::Addi => (seq, Some((rd, a.wrapping_add(i as u32)))),
        Op::Andi => (seq, Some((rd, a & i as u32))),
        Op::Ori => (seq, Some((rd, a | i as u32))),
        Op::Xori => (seq, Some((rd, a ^ i as u32))),
        Op::Slti => (seq, Some((rd, ((a as i32) < i) as u32))),
        Op::Lui => (seq, Some((rd, (i as u32).wrapping_shl(13)))),
        Op::Mul => (seq, Some((rd, a.wrapping_mul(b)))),
        Op::Div => {
            let v = if b == 0 {
                u32::MAX
            } else {
                ((a as i32).wrapping_div(b as i32)) as u32
            };
            (seq, Some((rd, v)))
        }
        Op::Rem => {
            let v = if b == 0 {
                a
            } else {
                ((a as i32).wrapping_rem(b as i32)) as u32
            };
            (seq, Some((rd, v)))
        }
        Op::Lw => {
            let addr = a.wrapping_add(i as u32);
            (seq, Some((rd, mem.read(addr))))
        }
        Op::Sw => {
            let addr = a.wrapping_add(i as u32);
            mem.write(addr, b);
            (seq, None)
        }
        Op::Beq => (
            if a == b {
                pc.wrapping_add(i as u32)
            } else {
                seq
            },
            None,
        ),
        Op::Bne => (
            if a != b {
                pc.wrapping_add(i as u32)
            } else {
                seq
            },
            None,
        ),
        Op::Blt => (
            if (a as i32) < (b as i32) {
                pc.wrapping_add(i as u32)
            } else {
                seq
            },
            None,
        ),
        Op::Bge => (
            if (a as i32) >= (b as i32) {
                pc.wrapping_add(i as u32)
            } else {
                seq
            },
            None,
        ),
        Op::Jal => (pc.wrapping_add(i as u32), Some((rd, seq))),
        Op::Jalr => (a.wrapping_add(i as u32), Some((rd, seq))),
        Op::Halt => (pc, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;

    #[test]
    fn computes_sum_of_1_to_10() {
        let mut a = Asm::new();
        let r_i = Reg(1);
        let r_sum = Reg(2);
        let r_lim = Reg(3);
        let top = a.label();
        a.li(r_i, 1);
        a.li(r_sum, 0);
        a.li(r_lim, 11);
        a.bind(top);
        a.add(r_sum, r_sum, r_i);
        a.addi(r_i, r_i, 1);
        a.blt(r_i, r_lim, top);
        a.halt();
        let p = a.assemble();
        let mut m = Interp::new(&p, 1024);
        m.run(1000);
        assert!(m.halted());
        assert_eq!(m.regs[2], 55);
    }

    #[test]
    fn memory_ops_and_forwarding_order() {
        let mut a = Asm::new();
        a.li(Reg(1), 100); // base address
        a.li(Reg(2), 7);
        a.sw(Reg(2), Reg(1), 0);
        a.lw(Reg(3), Reg(1), 0);
        a.addi(Reg(3), Reg(3), 1);
        a.sw(Reg(3), Reg(1), 1);
        a.lw(Reg(4), Reg(1), 1);
        a.halt();
        let p = a.assemble();
        let mut m = Interp::new(&p, 1024);
        m.run(100);
        assert_eq!(m.regs[3], 8);
        assert_eq!(m.regs[4], 8);
        assert_eq!(m.mem.read(101), 8);
    }

    #[test]
    fn call_and_return() {
        let mut a = Asm::new();
        let f = a.label();
        let end = a.label();
        a.li(Reg(1), 5);
        a.jal(Reg::RA, f);
        a.j(end);
        a.bind(f);
        a.mul(Reg(1), Reg(1), Reg(1));
        a.ret();
        a.bind(end);
        a.halt();
        let p = a.assemble();
        let mut m = Interp::new(&p, 64);
        m.run(100);
        assert_eq!(m.regs[1], 25);
        assert!(m.halted());
    }

    #[test]
    fn division_edge_cases() {
        let mut a = Asm::new();
        a.li(Reg(1), -7);
        a.li(Reg(2), 2);
        a.div(Reg(3), Reg(1), Reg(2)); // -3
        a.rem(Reg(4), Reg(1), Reg(2)); // -1
        a.li(Reg(5), 0);
        a.div(Reg(6), Reg(1), Reg(5)); // -1 (by convention)
        a.rem(Reg(7), Reg(1), Reg(5)); // -7
        a.halt();
        let p = a.assemble();
        let mut m = Interp::new(&p, 64);
        m.run(100);
        assert_eq!(m.regs[3] as i32, -3);
        assert_eq!(m.regs[4] as i32, -1);
        assert_eq!(m.regs[6], u32::MAX);
        assert_eq!(m.regs[7] as i32, -7);
    }

    #[test]
    fn r0_stays_zero() {
        let mut a = Asm::new();
        a.addi(Reg::ZERO, Reg::ZERO, 5);
        a.halt();
        let p = a.assemble();
        let mut m = Interp::new(&p, 64);
        m.run(10);
        assert_eq!(m.regs[0], 0);
    }

    #[test]
    fn running_off_the_end_halts() {
        let mut a = Asm::new();
        a.addi(Reg(1), Reg(0), 1);
        let p = a.assemble();
        let mut m = Interp::new(&p, 64);
        let n = m.run(100);
        assert_eq!(n, 1);
        assert!(m.halted());
    }
}
