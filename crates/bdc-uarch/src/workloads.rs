//! Workload kernels: Dhrystone plus six SPEC-CPU2000-integer-like kernels.
//!
//! The paper runs Dhrystone and SimPoints of bzip2, gap, gzip, mcf, parser
//! and vortex. We cannot run SPEC binaries on a 27-opcode ISA, so each
//! kernel reproduces the *microarchitecturally defining behaviour* of its
//! namesake — the properties the depth/width experiments are sensitive to:
//!
//! | kernel  | character |
//! |---------|-----------|
//! | dhrystone | call-heavy, predictable branches, record copies |
//! | bzip2   | sorting: data-dependent compares, moderate ILP |
//! | gap     | multiply-heavy list/permutation arithmetic |
//! | gzip    | hash-chain match loops, mixed branches |
//! | mcf     | pointer chasing over a large footprint (memory-bound) |
//! | parser  | hash probing with unpredictable branches, recursion |
//! | vortex  | object copies and field lookups, load/store heavy |

use crate::asm::{Asm, Program};
use crate::isa::Reg;

/// The benchmark set of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Dhrystone 2.1-like synthetic systems benchmark.
    Dhrystone,
    /// bzip2-like block sort.
    Bzip2,
    /// gap-like group arithmetic.
    Gap,
    /// gzip-like LZ77 hash matching.
    Gzip,
    /// mcf-like network-simplex pointer chasing.
    Mcf,
    /// parser-like dictionary hashing.
    Parser,
    /// vortex-like object database.
    Vortex,
}

impl Workload {
    /// All seven, in the paper's plotting order.
    pub fn all() -> [Workload; 7] {
        [
            Workload::Bzip2,
            Workload::Gap,
            Workload::Gzip,
            Workload::Mcf,
            Workload::Parser,
            Workload::Vortex,
            Workload::Dhrystone,
        ]
    }

    /// Short name used in figures.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Dhrystone => "dhrystone",
            Workload::Bzip2 => "bzip",
            Workload::Gap => "gap",
            Workload::Gzip => "gzip",
            Workload::Mcf => "mcf",
            Workload::Parser => "parser",
            Workload::Vortex => "vortex",
        }
    }

    /// Memory words the kernel needs.
    pub fn memory_words(self) -> usize {
        match self {
            Workload::Mcf => 1 << 17,
            _ => 1 << 15,
        }
    }
}

/// Builds the program for a workload. `outer` scales the outer-loop trip
/// count (instructions scale roughly linearly with it).
pub fn build_workload(w: Workload, outer: u32) -> Program {
    match w {
        Workload::Dhrystone => dhrystone(outer),
        Workload::Bzip2 => bzip2ish(outer),
        Workload::Gap => gapish(outer),
        Workload::Gzip => gzipish(outer),
        Workload::Mcf => mcfish(outer),
        Workload::Parser => parserish(outer),
        Workload::Vortex => vortexish(outer),
    }
}

/// Deterministic data generator for seeding arrays.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u32 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) as u32
    }
}

// Register conventions inside kernels: r13 = outer counter, r12 = outer
// limit, r14 = stack-ish base, r15 = ra.
const I: Reg = Reg(13);
const LIM: Reg = Reg(12);

fn outer_prologue(a: &mut Asm, outer: u32) {
    a.li(I, 0);
    a.li(LIM, outer as i32);
}

/// dhrystone: calls, record copy, and predictable conditionals.
fn dhrystone(outer: u32) -> Program {
    let mut a = Asm::new();
    let rec_a = 2000i32;
    let rec_b = 2040i32;
    // Seed record A.
    for k in 0..8 {
        a.data_word((rec_a + k) as u32, (k as u32) * 3 + 1);
    }
    let f_arith = a.label();
    let f_copy = a.label();
    let top = a.label();
    let else1 = a.label();
    let join1 = a.label();
    let start = a.label();

    a.j(start);

    // f_arith(r1, r2) -> r1: a little arithmetic chain.
    a.bind(f_arith);
    a.add(Reg(1), Reg(1), Reg(2));
    a.addi(Reg(1), Reg(1), 7);
    a.sll(Reg(3), Reg(1), Reg(0));
    a.sub(Reg(1), Reg(1), Reg(3));
    a.add(Reg(1), Reg(1), Reg(3));
    a.ret();

    // f_copy: copy 8-word record A -> B, compare as it goes.
    a.bind(f_copy);
    a.li(Reg(4), rec_a);
    a.li(Reg(5), rec_b);
    for k in 0..8 {
        a.lw(Reg(6), Reg(4), k);
        a.sw(Reg(6), Reg(5), k);
    }
    a.ret();

    a.bind(start);
    outer_prologue(&mut a, outer);
    a.bind(top);
    // Proc1-ish: call arith twice, call copy, branch on a mostly-true cond.
    a.addi(Reg(1), I, 3);
    a.addi(Reg(2), I, 5);
    a.jal(Reg::RA, f_arith);
    a.jal(Reg::RA, f_arith);
    a.jal(Reg::RA, f_copy);
    a.andi(Reg(7), I, 7);
    a.bne(Reg(7), Reg(0), else1); // true 7/8 of the time
    a.addi(Reg(8), Reg(8), 2);
    a.j(join1);
    a.bind(else1);
    a.addi(Reg(8), Reg(8), 1);
    a.bind(join1);
    a.addi(I, I, 1);
    a.blt(I, LIM, top);
    a.halt();
    a.assemble()
}

/// bzip2: shell-sort passes over a pseudo-random array.
fn bzip2ish(outer: u32) -> Program {
    let mut a = Asm::new();
    let base = 4000i32;
    let n = 256i32;
    let mut lcg = Lcg(0xB212);
    for k in 0..n {
        a.data_word((base + k) as u32, lcg.next() & 0xFFFF);
    }
    let top = a.label();
    let pass = a.label();
    let inner = a.label();
    let no_swap = a.label();
    let pass_done = a.label();

    outer_prologue(&mut a, outer);
    a.bind(top);
    // One bubble pass per outer iteration with a rotating start offset so
    // the array never fully sorts (keeps compares data-dependent).
    a.andi(Reg(1), I, 63); // j = i & 63
    a.bind(pass);
    a.li(Reg(2), base);
    a.add(Reg(2), Reg(2), Reg(1)); // &a[j]
    a.li(Reg(3), n - 64);
    a.bind(inner);
    a.lw(Reg(4), Reg(2), 0);
    a.lw(Reg(5), Reg(2), 1);
    a.blt(Reg(4), Reg(5), no_swap); // data-dependent
    a.sw(Reg(5), Reg(2), 0);
    a.sw(Reg(4), Reg(2), 1);
    a.bind(no_swap);
    a.addi(Reg(2), Reg(2), 1);
    a.addi(Reg(3), Reg(3), -1);
    a.bne(Reg(3), Reg(0), inner);
    a.j(pass_done);
    a.bind(pass_done);
    a.addi(I, I, 1);
    a.blt(I, LIM, top);
    a.halt();
    a.assemble()
}

/// gap: permutation composition and multiply-accumulate.
fn gapish(outer: u32) -> Program {
    let mut a = Asm::new();
    let p1 = 6000i32;
    let p2 = 6064i32;
    let p3 = 6128i32;
    let n = 64i32;
    let mut lcg = Lcg(0x6A9);
    // Two permutations of 0..63 (generated by LCG swap shuffle).
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for k in (1..n as usize).rev() {
        let j = (lcg.next() as usize) % (k + 1);
        perm.swap(k, j);
    }
    for (k, v) in perm.iter().enumerate() {
        a.data_word((p1 + k as i32) as u32, *v);
    }
    for k in (1..n as usize).rev() {
        let j = (lcg.next() as usize) % (k + 1);
        perm.swap(k, j);
    }
    for (k, v) in perm.iter().enumerate() {
        a.data_word((p2 + k as i32) as u32, *v);
    }
    let top = a.label();
    let inner = a.label();
    outer_prologue(&mut a, outer);
    a.bind(top);
    a.li(Reg(1), 0); // k
    a.li(Reg(2), n);
    a.li(Reg(8), 1); // product accumulator
    a.bind(inner);
    // p3[k] = p1[p2[k]]; acc = acc * (p3[k] + 3)
    a.li(Reg(3), p2);
    a.add(Reg(3), Reg(3), Reg(1));
    a.lw(Reg(4), Reg(3), 0);
    a.li(Reg(5), p1);
    a.add(Reg(5), Reg(5), Reg(4));
    a.lw(Reg(6), Reg(5), 0);
    a.li(Reg(7), p3);
    a.add(Reg(7), Reg(7), Reg(1));
    a.sw(Reg(6), Reg(7), 0);
    a.addi(Reg(6), Reg(6), 3);
    a.mul(Reg(8), Reg(8), Reg(6));
    a.addi(Reg(1), Reg(1), 1);
    a.blt(Reg(1), Reg(2), inner);
    a.addi(I, I, 1);
    a.blt(I, LIM, top);
    a.halt();
    a.assemble()
}

/// gzip: rolling-hash chain matching.
fn gzipish(outer: u32) -> Program {
    let mut a = Asm::new();
    let text = 8000i32;
    let head = 12000i32;
    let n = 1024i32;
    let hmask = 255i32;
    let mut lcg = Lcg(0x9219);
    // Compressible-ish text: small alphabet with repeats.
    for k in 0..n {
        let v = if k % 7 < 3 {
            (k as u32 / 7) % 17
        } else {
            lcg.next() % 17
        };
        a.data_word((text + k) as u32, v);
    }
    let top = a.label();
    let inner = a.label();
    let no_match = a.label();
    let matched = a.label();
    let len_loop = a.label();
    let len_done = a.label();
    outer_prologue(&mut a, outer);
    a.bind(top);
    a.li(Reg(1), 0); // position
    a.li(Reg(2), n - 8);
    a.bind(inner);
    // h = (t[i] ^ (t[i+1]<<2) ^ (t[i+2]<<4)) & hmask
    a.li(Reg(3), text);
    a.add(Reg(3), Reg(3), Reg(1));
    a.lw(Reg(4), Reg(3), 0);
    a.lw(Reg(5), Reg(3), 1);
    a.lw(Reg(6), Reg(3), 2);
    a.li(Reg(7), 2);
    a.sll(Reg(5), Reg(5), Reg(7));
    a.li(Reg(7), 4);
    a.sll(Reg(6), Reg(6), Reg(7));
    a.xor(Reg(4), Reg(4), Reg(5));
    a.xor(Reg(4), Reg(4), Reg(6));
    a.andi(Reg(4), Reg(4), hmask);
    // prev = head[h]; head[h] = i
    a.li(Reg(5), head);
    a.add(Reg(5), Reg(5), Reg(4));
    a.lw(Reg(6), Reg(5), 0); // prev
    a.sw(Reg(1), Reg(5), 0);
    a.beq(Reg(6), Reg(0), no_match);
    a.bind(matched);
    // match-length loop: compare up to 4 words (data-dependent exit).
    a.li(Reg(7), 0);
    a.li(Reg(9), text);
    a.add(Reg(9), Reg(9), Reg(6));
    a.bind(len_loop);
    a.lw(Reg(10), Reg(3), 0);
    a.lw(Reg(11), Reg(9), 0);
    a.bne(Reg(10), Reg(11), len_done);
    a.addi(Reg(7), Reg(7), 1);
    a.addi(Reg(3), Reg(3), 1);
    a.addi(Reg(9), Reg(9), 1);
    a.slti(Reg(10), Reg(7), 4);
    a.bne(Reg(10), Reg(0), len_loop);
    a.bind(len_done);
    a.add(Reg(8), Reg(8), Reg(7)); // total match length
    a.bind(no_match);
    a.addi(Reg(1), Reg(1), 1);
    a.blt(Reg(1), Reg(2), inner);
    a.addi(I, I, 1);
    a.blt(I, LIM, top);
    a.halt();
    a.assemble()
}

/// mcf: pointer chasing over a large node array with conditional updates.
fn mcfish(outer: u32) -> Program {
    let mut a = Asm::new();
    let nodes = 16384i32; // words: 64 KiB footprint, 8× the L1D
    let base = 20000i32;
    // next[i] scattered with a large co-prime stride (poor locality).
    for k in 0..nodes {
        let nxt = (k as i64 * 7919 + 13) % nodes as i64;
        a.data_word((base + k) as u32, (base as i64 + nxt) as u32);
    }
    let top = a.label();
    let inner = a.label();
    let skip = a.label();
    outer_prologue(&mut a, outer);
    a.bind(top);
    a.li(Reg(1), base); // node pointer
    a.li(Reg(2), 0);
    a.li(Reg(3), 512); // chase length per outer iteration
    a.bind(inner);
    a.lw(Reg(1), Reg(1), 0); // p = *p   (serial, cache-missing)
    a.andi(Reg(4), Reg(1), 3);
    a.bne(Reg(4), Reg(0), skip); // data-dependent branch
    a.addi(Reg(5), Reg(5), 1);
    a.bind(skip);
    a.addi(Reg(2), Reg(2), 1);
    a.blt(Reg(2), Reg(3), inner);
    a.addi(I, I, 1);
    a.blt(I, LIM, top);
    a.halt();
    a.assemble()
}

/// parser: hash probes of a dictionary with unpredictable hit/miss branches.
fn parserish(outer: u32) -> Program {
    let mut a = Asm::new();
    let dict = 28000i32;
    let dsize = 509i32; // prime
    let mut lcg = Lcg(0x9A125);
    // Fill ~60% of the dictionary.
    for k in 0..dsize {
        let v = if lcg.next() % 10 < 6 {
            lcg.next() | 1
        } else {
            0
        };
        a.data_word((dict + k) as u32, v);
    }
    let f_probe = a.label();
    let probe_hit = a.label();
    let probe_ret = a.label();
    let top = a.label();
    let start = a.label();
    a.j(start);

    // f_probe(r1 = key) -> r2 = found?
    a.bind(f_probe);
    a.li(Reg(3), dsize);
    a.rem(Reg(4), Reg(1), Reg(3));
    a.li(Reg(5), dict);
    a.add(Reg(5), Reg(5), Reg(4));
    a.lw(Reg(6), Reg(5), 0);
    a.bne(Reg(6), Reg(0), probe_hit);
    a.li(Reg(2), 0);
    a.j(probe_ret);
    a.bind(probe_hit);
    a.li(Reg(2), 1);
    a.bind(probe_ret);
    a.ret();

    a.bind(start);
    outer_prologue(&mut a, outer);
    a.li(Reg(9), 0x1234);
    a.bind(top);
    // Mix a key, probe, branch on the (unpredictable) result.
    a.li(Reg(7), 5);
    a.sll(Reg(8), Reg(9), Reg(7));
    a.xor(Reg(9), Reg(9), Reg(8));
    a.li(Reg(7), 7);
    a.srl(Reg(8), Reg(9), Reg(7));
    a.xor(Reg(9), Reg(9), Reg(8));
    a.andi(Reg(1), Reg(9), 8191);
    a.jal(Reg::RA, f_probe);
    let miss = a.label();
    let cont = a.label();
    a.beq(Reg(2), Reg(0), miss);
    a.addi(Reg(10), Reg(10), 1);
    a.j(cont);
    a.bind(miss);
    a.addi(Reg(11), Reg(11), 1);
    a.bind(cont);
    a.addi(I, I, 1);
    a.blt(I, LIM, top);
    a.halt();
    a.assemble()
}

/// vortex: object-record creation, copy and field lookups.
fn vortexish(outer: u32) -> Program {
    let mut a = Asm::new();
    let heap = 32000i32;
    let index = 30000i32;
    let nrec = 128i32;
    let rec_words = 6i32;
    let mut lcg = Lcg(0x407);
    for k in 0..nrec {
        a.data_word(
            (index + k) as u32,
            (heap + (lcg.next() as i32 % nrec) * rec_words) as u32,
        );
    }
    let f_get = a.label();
    let f_put = a.label();
    let top = a.label();
    let start = a.label();
    a.j(start);

    // f_get(r1 = rec ptr) -> r2 = field sum
    a.bind(f_get);
    a.lw(Reg(2), Reg(1), 0);
    a.lw(Reg(3), Reg(1), 1);
    a.lw(Reg(4), Reg(1), 2);
    a.add(Reg(2), Reg(2), Reg(3));
    a.add(Reg(2), Reg(2), Reg(4));
    a.ret();

    // f_put(r1 = rec ptr, r2 = v): writes three fields.
    a.bind(f_put);
    a.sw(Reg(2), Reg(1), 0);
    a.addi(Reg(3), Reg(2), 1);
    a.sw(Reg(3), Reg(1), 1);
    a.addi(Reg(3), Reg(2), 2);
    a.sw(Reg(3), Reg(1), 2);
    a.ret();

    a.bind(start);
    outer_prologue(&mut a, outer);
    a.bind(top);
    // rec = index[i % nrec]; sum = get(rec); put(rec, sum & 0xFF)
    a.li(Reg(5), nrec);
    a.rem(Reg(6), I, Reg(5));
    a.li(Reg(7), index);
    a.add(Reg(7), Reg(7), Reg(6));
    a.lw(Reg(1), Reg(7), 0);
    a.jal(Reg::RA, f_get);
    a.andi(Reg(2), Reg(2), 255);
    a.jal(Reg::RA, f_put);
    a.addi(I, I, 1);
    a.blt(I, LIM, top);
    a.halt();
    a.assemble()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoreConfig;
    use crate::core::OooCore;
    use crate::func::Interp;

    #[test]
    fn all_workloads_build_and_terminate() {
        for w in Workload::all() {
            let p = build_workload(w, 3);
            let mut gold = Interp::new(&p, w.memory_words());
            let n = gold.run(3_000_000);
            assert!(gold.halted(), "{} did not halt ({n} instrs)", w.name());
            assert!(n > 50, "{} too short: {n}", w.name());
        }
    }

    #[test]
    fn ooo_matches_golden_on_every_workload() {
        for w in Workload::all() {
            let p = build_workload(w, 2);
            let mut gold = Interp::new(&p, w.memory_words());
            gold.run(2_000_000);
            let mut core = OooCore::new(&p, CoreConfig::with_widths(4, 6), w.memory_words());
            let stats = core.run(2_000_000);
            assert!(core.halted(), "{} ooo did not halt", w.name());
            assert_eq!(stats.instructions, gold.icount, "{} icount", w.name());
            assert_eq!(core.arch_regs(), &gold.regs, "{} registers", w.name());
        }
    }

    #[test]
    fn mcf_is_memory_bound_dhrystone_is_not() {
        let mcf = build_workload(Workload::Mcf, 6);
        let dhry = build_workload(Workload::Dhrystone, 200);
        let cfg = CoreConfig::baseline();
        let s_mcf = OooCore::new(&mcf, cfg.clone(), Workload::Mcf.memory_words()).run(200_000);
        let s_dhry = OooCore::new(&dhry, cfg, Workload::Dhrystone.memory_words()).run(200_000);
        assert!(
            s_mcf.dcache_miss_rate() > 4.0 * s_dhry.dcache_miss_rate().max(0.01),
            "mcf {:.3} vs dhrystone {:.3}",
            s_mcf.dcache_miss_rate(),
            s_dhry.dcache_miss_rate()
        );
        assert!(s_mcf.ipc() < s_dhry.ipc());
    }

    #[test]
    fn parser_mispredicts_more_than_dhrystone() {
        let parser = build_workload(Workload::Parser, 2000);
        let dhry = build_workload(Workload::Dhrystone, 400);
        let cfg = CoreConfig::baseline();
        let s_p = OooCore::new(&parser, cfg.clone(), 1 << 15).run(200_000);
        let s_d = OooCore::new(&dhry, cfg, 1 << 15).run(200_000);
        assert!(
            s_p.mispredict_rate() > 1.5 * s_d.mispredict_rate().max(0.001),
            "parser {:.4} vs dhrystone {:.4}",
            s_p.mispredict_rate(),
            s_d.mispredict_rate()
        );
    }
}
