#![warn(missing_docs)]

//! Org32: a small RISC ISA and a parameterized out-of-order superscalar
//! simulator.
//!
//! This crate is the AnyCore stand-in of the paper's flow: it supplies the
//! IPC side of `performance = IPC × frequency`. The simulated core is an
//! out-of-order superscalar with a configurable pipeline-depth plan
//! (which front-end function owns how many stages) and configurable
//! front-end and back-end widths — the two axes of the paper's §5.3/§5.4
//! experiments.
//!
//! * [`isa`] — the Org32 instruction set (encode/decode round-trip).
//! * [`asm`] — a programmatic assembler with labels.
//! * [`func`] — an in-order golden-model interpreter.
//! * [`core`] — the cycle-level out-of-order model (fetch → retire).
//! * [`bpred`] — gshare + BTB + return-address stack.
//! * [`mem`] — memory and set-associative L1 caches.
//! * [`workloads`] — Dhrystone plus six SPEC-CPU2000-like kernels.

pub mod asm;
pub mod bpred;
pub mod config;
pub mod core;
pub mod func;
pub mod inorder;
pub mod isa;
pub mod mem;
pub mod stats;
pub mod text;
pub mod workloads;

pub use asm::{Asm, Program};
pub use bpred::{BpredConfig, BpredKind};
pub use config::{CoreConfig, StagePlan};
pub use core::OooCore;
pub use func::Interp;
pub use inorder::{InOrderConfig, InOrderCore};
pub use isa::{Instr, Op, Reg};
pub use stats::SimStats;
pub use text::{assemble_text, disassemble, AsmError};
pub use workloads::{build_workload, Workload};
