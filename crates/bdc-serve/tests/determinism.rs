//! The serving layer's determinism contract (ISSUE acceptance criterion):
//! for a fixed query, the response body is **byte-identical** whether the
//! engine runs serial or with 8 workers, and whether the answer was
//! computed cold or replayed from a warm artifact/response cache.
//!
//! The worker-count override is process-global, so every test that touches
//! it serializes on one mutex and restores the default before releasing it
//! (the same pattern as `bdc-core/tests/determinism.rs`).

use std::sync::{Mutex, MutexGuard, OnceLock};

use bdc_core::process::shared_kit;
use bdc_core::{CoreSpec, Process, TechKit};
use bdc_exec::set_workers;
use bdc_serve::api::{self, library_response, synth_response, ApiCall};
use bdc_serve::client::Connection;
use bdc_serve::ServeConfig;

/// Guards the global worker-count override; resets it on drop.
struct PoolLock {
    _guard: MutexGuard<'static, ()>,
}

impl PoolLock {
    fn acquire() -> PoolLock {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let m = LOCK.get_or_init(|| Mutex::new(()));
        PoolLock {
            _guard: m.lock().unwrap_or_else(|p| p.into_inner()),
        }
    }
}

impl Drop for PoolLock {
    fn drop(&mut self) {
        set_workers(None);
    }
}

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// The query set pinned across worker counts: every computational
/// endpoint, silicon only (the organic library is expensive to
/// characterize and adds nothing to the byte-equality argument).
fn calls() -> Vec<ApiCall> {
    use bdc_uarch::Workload;
    let spec = CoreSpec::baseline();
    vec![
        ApiCall::Library {
            process: Process::Silicon,
        },
        ApiCall::Synth {
            process: Process::Silicon,
            spec: spec.clone(),
        },
        ApiCall::Width {
            process: Process::Silicon,
            fe: 2,
            be: 4,
        },
        ApiCall::Ipc {
            spec,
            workload: Workload::Gzip,
            outer: 5,
            instructions: 4_000,
        },
    ]
}

#[test]
fn execute_is_byte_identical_across_worker_counts() {
    let _lock = PoolLock::acquire();
    let calls = calls();
    let mut reference: Option<Vec<Vec<u8>>> = None;
    for w in WORKER_COUNTS {
        set_workers(Some(w));
        let bodies: Vec<Vec<u8>> = calls
            .iter()
            .map(|c| {
                let r = api::execute(c);
                assert_eq!(r.status, 200, "{c:?} with {w} workers");
                r.body
            })
            .collect();
        match &reference {
            None => reference = Some(bodies),
            Some(r) => assert_eq!(*r, bodies, "{w} workers diverged from serial"),
        }
    }
}

#[test]
fn cold_and_cache_loaded_kits_render_identical_bodies() {
    // A warm start loads the library from its Liberty-text artifact; the
    // response renderer must not be able to tell. Round-trip the in-memory
    // library through the exact representation the artifact cache stores
    // and compare whole response bodies.
    let kit = shared_kit(Process::Silicon);
    let reloaded = bdc_cells::parse_library(&bdc_cells::write_library(&kit.lib)).expect("parse");
    let kit2 = TechKit::with_library(Process::Silicon, reloaded);

    let a = library_response(kit);
    let b = library_response(&kit2);
    assert_eq!(a.status, 200);
    assert_eq!(a.body, b.body, "library body differs cold vs cache-loaded");

    let spec = CoreSpec::baseline();
    let a = synth_response(kit, &spec, &[]);
    let b = synth_response(&kit2, &spec, &[]);
    assert_eq!(a.status, 200);
    assert_eq!(a.body, b.body, "synth body differs cold vs cache-loaded");
}

#[test]
fn served_responses_are_byte_identical_cold_then_warm() {
    let _lock = PoolLock::acquire();
    set_workers(Some(8));
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    };
    let handle = bdc_serve::start(cfg).expect("bind");
    let addr = format!("127.0.0.1:{}", handle.port());
    let queries = [
        "/v1/library?process=silicon",
        "/v1/synth?process=silicon&fe_width=2&be_pipes=4",
        "/v1/ipc?workload=gzip&outer=5&instructions=4000",
    ];
    let mut conn = Connection::open(&addr).expect("connect");
    for q in queries {
        let cold = conn.get(q).expect("cold");
        assert_eq!(cold.status, 200, "{q}");
        // The repeat is served from the engine's response cache; a second
        // connection checks the transport doesn't perturb the bytes either.
        let warm = conn.get(q).expect("warm");
        let other = Connection::open(&addr)
            .expect("connect")
            .get(q)
            .expect("other-conn");
        assert_eq!(cold.body, warm.body, "{q}: warm repeat differs");
        assert_eq!(cold.body, other.body, "{q}: fresh connection differs");
    }
    assert!(
        handle
            .metrics()
            .cache_hits
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 3,
        "warm repeats should be response-cache hits"
    );
    handle.shutdown();
}
