//! End-to-end tests: boot the real daemon stack on an ephemeral port,
//! drive it over TCP with the real client, and check routing, validation,
//! metrics accounting, and graceful shutdown.

use std::sync::atomic::Ordering;

use bdc_serve::client::{get_once, Connection};
use bdc_serve::json::{self, Json};
use bdc_serve::{EngineConfig, ServeConfig};

fn boot() -> (bdc_serve::ServerHandle, String) {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        conn_threads: 4,
        engine: EngineConfig {
            queue_cap: 16,
            max_batch: 8,
            ..EngineConfig::default()
        },
        ..ServeConfig::default()
    };
    let handle = bdc_serve::start(cfg).expect("bind ephemeral port");
    let addr = format!("127.0.0.1:{}", handle.port());
    (handle, addr)
}

fn body_json(body: &[u8]) -> Json {
    json::parse(std::str::from_utf8(body).expect("utf-8 body")).expect("json body")
}

#[test]
fn serves_a_mixed_session_end_to_end() {
    let (handle, addr) = boot();
    let mut conn = Connection::open(&addr).expect("connect");

    // Liveness.
    let r = conn.get("/healthz").expect("healthz");
    assert_eq!(r.status, 200);
    assert_eq!(
        body_json(&r.body).get("status").and_then(Json::as_str),
        Some("ok")
    );

    // A real computation over GET...
    let r = conn
        .get("/v1/ipc?workload=gzip&outer=5&instructions=4000&process=silicon")
        .expect("ipc");
    assert_eq!(r.status, 200, "{}", String::from_utf8_lossy(&r.body));
    let v = body_json(&r.body);
    assert!(v.get("ipc").and_then(Json::as_f64).unwrap() > 0.0);
    assert!(v.get("cycles").and_then(Json::as_u64).unwrap() > 0);

    // ...and the same query as a POST body normalizes to the same bytes.
    let r2 = conn
        .post(
            "/v1/ipc",
            r#"{"workload":"gzip","outer":5,"instructions":4000,"process":"silicon"}"#,
        )
        .expect("ipc post");
    assert_eq!(r2.status, 200);
    assert_eq!(r.body, r2.body, "GET and POST bodies must coincide");

    // Validation failures are 400 with a JSON error, not a closed socket.
    let r = conn.get("/v1/width?fe=99").expect("bad width");
    assert_eq!(r.status, 400);
    assert!(body_json(&r.body).get("error").is_some());

    // Unknown routes 404; the connection stays usable afterwards.
    let r = conn.get("/v2/nope").expect("404");
    assert_eq!(r.status, 404);
    let r = conn.get("/healthz").expect("healthz after 404");
    assert_eq!(r.status, 200);

    // Metrics reflect the traffic above.
    let r = conn.get("/v1/metrics").expect("metrics");
    assert_eq!(r.status, 200);
    let m = body_json(&r.body);
    let accepted = m
        .get("connections")
        .and_then(|c| c.get("accepted"))
        .and_then(Json::as_u64)
        .expect("connections.accepted");
    assert!(accepted >= 1);
    assert_eq!(
        m.get("engine")
            .and_then(|e| e.get("queue_cap"))
            .and_then(Json::as_u64),
        Some(16),
        "{}",
        String::from_utf8_lossy(&r.body)
    );
    let ipc = m
        .get("endpoints")
        .and_then(|e| e.get("ipc"))
        .expect("ipc endpoint entry");
    assert_eq!(ipc.get("ok").and_then(Json::as_u64), Some(2));
    assert!(ipc.get("p99_ms").and_then(Json::as_f64).unwrap() >= 0.0);

    handle.shutdown();
}

#[test]
fn malformed_http_gets_a_4xx_not_a_hang() {
    let (handle, addr) = boot();
    use std::io::{Read as _, Write as _};
    let mut s = std::net::TcpStream::connect(&addr).expect("connect");
    s.write_all(b"NONSENSE\r\n\r\n").expect("write");
    let mut buf = Vec::new();
    let _ = s.read_to_end(&mut buf);
    let head = String::from_utf8_lossy(&buf);
    assert!(
        head.starts_with("HTTP/1.1 4"),
        "expected a 4xx status line, got: {head:.60}"
    );
    handle.shutdown();
}

#[test]
fn identical_concurrent_queries_coalesce_over_tcp() {
    let (handle, addr) = boot();
    let q = "/v1/ipc?workload=mcf&outer=4&instructions=3000";
    std::thread::scope(|s| {
        for _ in 0..6 {
            let addr = &addr;
            s.spawn(move || {
                let r = get_once(addr, q).expect("request");
                assert_eq!(r.status, 200);
            });
        }
    });
    let m = handle.metrics();
    let coalesced = m.coalesced.load(Ordering::Relaxed);
    let hits = m.cache_hits.load(Ordering::Relaxed);
    // Six identical queries cost one computation; the other five either
    // joined the in-flight computation or hit the response cache.
    assert_eq!(coalesced + hits, 5, "coalesced={coalesced} hits={hits}");
    handle.shutdown();
}

#[test]
fn shutdown_is_clean_and_idempotent_under_load() {
    let (handle, addr) = boot();
    // Leave a response in the cache, then shut down mid-session.
    let mut conn = Connection::open(&addr).expect("connect");
    let r = conn.get("/v1/library?process=silicon").expect("library");
    assert_eq!(r.status, 200);
    handle.shutdown();
    // The listener is gone: new connections are refused (or reset).
    assert!(
        get_once(&addr, "/healthz").is_err(),
        "listener survived shutdown"
    );
}
