//! Serve-layer golden tests (ISSUE 4 acceptance): `/v1/*` response
//! bodies are byte-identical to captures taken before execution was
//! refactored onto `bdc_core::registry::query` (committed under
//! `tests/golden/`). Any representational change — float formatting,
//! member order, spec normalization — fails here.

use bdc_core::{CoreSpec, Process, StageKind};
use bdc_serve::api::{execute, ApiCall};
use bdc_uarch::Workload;

fn check(call: ApiCall, golden: &[u8]) {
    let r = execute(&call);
    assert_eq!(r.status, 200, "{call:?}");
    assert!(
        r.body == golden,
        "{call:?}: body differs from the pre-refactor golden capture\n\
         --- golden ---\n{}\n--- rendered ---\n{}",
        String::from_utf8_lossy(golden),
        String::from_utf8_lossy(&r.body)
    );
}

#[test]
fn golden_library_organic() {
    check(
        ApiCall::Library {
            process: Process::Organic,
        },
        include_bytes!("golden/library_organic.json"),
    );
}

#[test]
fn golden_library_silicon() {
    check(
        ApiCall::Library {
            process: Process::Silicon,
        },
        include_bytes!("golden/library_silicon.json"),
    );
}

#[test]
fn golden_synth_silicon_baseline() {
    check(
        ApiCall::Synth {
            process: Process::Silicon,
            spec: CoreSpec::baseline(),
        },
        include_bytes!("golden/synth_silicon_baseline.json"),
    );
}

#[test]
fn golden_synth_organic_widened_split() {
    let spec = CoreSpec {
        fe_width: 2,
        be_pipes: 4,
        splits: vec![
            StageKind::from_name("fetch").unwrap(),
            StageKind::from_name("issue").unwrap(),
        ],
    };
    check(
        ApiCall::Synth {
            process: Process::Organic,
            spec,
        },
        include_bytes!("golden/synth_organic_2w4b.json"),
    );
}

#[test]
fn golden_depth_silicon_11() {
    check(
        ApiCall::Depth {
            process: Process::Silicon,
            stages: 11,
        },
        include_bytes!("golden/depth_silicon_11.json"),
    );
}

#[test]
fn golden_width_organic_2_4() {
    check(
        ApiCall::Width {
            process: Process::Organic,
            fe: 2,
            be: 4,
        },
        include_bytes!("golden/width_organic_2_4.json"),
    );
}

#[test]
fn golden_ipc_gzip() {
    check(
        ApiCall::Ipc {
            spec: CoreSpec::baseline(),
            workload: Workload::Gzip,
            outer: 5,
            instructions: 4_000,
        },
        include_bytes!("golden/ipc_gzip_5_4000.json"),
    );
}

#[test]
fn experiment_body_matches_registry_render() {
    // The `/v1/experiment` body must be the registry render, line for
    // line — dispatch by id cannot drift from `bdc run <id>`.
    let r = execute(&ApiCall::Experiment {
        id: "fig08".into(),
        quick: true,
    });
    assert_eq!(r.status, 200);
    let body = bdc_serve::json::parse(std::str::from_utf8(&r.body).unwrap()).unwrap();
    let text = bdc_core::registry::run_one("fig08", true).unwrap().text;
    let lines: Vec<&str> = text.lines().collect();
    let served: Vec<String> = match body.get("lines") {
        Some(bdc_serve::json::Json::Arr(items)) => items
            .iter()
            .map(|l| l.as_str().unwrap().to_string())
            .collect(),
        other => panic!("missing lines member: {other:?}"),
    };
    assert_eq!(served, lines);
    assert_eq!(
        body.get("id").and_then(|v| v.as_str()),
        Some("fig08"),
        "envelope id"
    );
}
