//! Property tests for the untrusted-input surfaces: the JSON codec and
//! the HTTP/1.1 request parser.
//!
//! Two contracts are pinned:
//!
//! * **Round trip** — any [`Json`] value the encoder can emit re-parses to
//!   an equal value, and re-encoding that parse is byte-identical (the
//!   determinism property the serving layer relies on).
//! * **No panic** — arbitrary, malformed, truncated, or oversized input
//!   makes the parsers return `Err`; it never panics or loops.

use proptest::prelude::*;

use bdc_serve::http::{self, read_request};
use bdc_serve::json::{self, Json};

/// An arbitrary JSON value, bounded in depth and width. Floats are drawn
/// from `f64::arbitrary`'s finite range; strings exercise the escaping
/// path with quotes, backslashes, control bytes, and non-ASCII text.
fn arb_json(depth: u32) -> BoxedStrategy<Json> {
    let scalar = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        any::<i64>().prop_map(Json::Int),
        any::<f64>().prop_map(Json::Num),
        arb_string().prop_map(Json::Str),
    ];
    if depth == 0 {
        return scalar.boxed();
    }
    prop_oneof![
        scalar,
        proptest::collection::vec(arb_json(depth - 1), 0..4).prop_map(Json::Arr),
        proptest::collection::vec((arb_string(), arb_json(depth - 1)), 0..4).prop_map(Json::Obj),
    ]
    .boxed()
}

fn arb_string() -> BoxedStrategy<String> {
    proptest::collection::vec(0u32..128, 0..8)
        .prop_map(|codes| {
            codes
                .into_iter()
                .map(|c| match c {
                    0..=9 => char::from_u32(c).unwrap(), // control bytes
                    10 => '"',
                    11 => '\\',
                    12 => '\n',
                    13 => 'µ',
                    14 => '漢',
                    c => char::from_u32(32 + (c % 90)).unwrap(),
                })
                .collect()
        })
        .boxed()
}

proptest! {
    #[test]
    fn json_round_trips_and_reencodes_identically(v in arb_json(3)) {
        let text = v.encode();
        let parsed = json::parse(&text).expect("encoder output must parse");
        // Re-encoding the parse is byte-identical — NaN/inf collapse to
        // null on the first encode, so compare at the text level.
        prop_assert_eq!(parsed.encode(), text);
    }

    #[test]
    fn json_parser_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = json::parse(&text); // Ok or Err, never a panic.
    }

    #[test]
    fn json_parser_never_panics_on_truncated_valid_text(v in arb_json(3), cut in 0usize..64) {
        let text = v.encode();
        let cut = cut.min(text.len());
        // Truncate at a char boundary (floor) to keep a &str.
        let mut end = cut;
        while end > 0 && !text.is_char_boundary(end) {
            end -= 1;
        }
        let _ = json::parse(&text[..end]);
    }

    #[test]
    fn http_parser_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut reader = bytes.as_slice();
        let _ = read_request(&mut reader); // Ok or Err, never a panic.
    }

    #[test]
    fn http_parser_accepts_what_the_client_sends(
        path_tail in proptest::collection::vec(97u8..=122, 0..12),
        n_params in 0usize..4,
    ) {
        let path: String = path_tail.iter().map(|&b| char::from(b)).collect();
        let query: String = (0..n_params)
            .map(|i| format!("k{i}=v{i}"))
            .collect::<Vec<_>>()
            .join("&");
        let target = if query.is_empty() {
            format!("/{path}")
        } else {
            format!("/{path}?{query}")
        };
        let raw = format!("GET {target} HTTP/1.1\r\nhost: bdc\r\n\r\n");
        let mut reader = raw.as_bytes();
        let req = read_request(&mut reader).expect("well-formed request");
        prop_assert_eq!(req.path, format!("/{path}"));
        prop_assert_eq!(http::parse_query(&req.query).len(), n_params);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn http_parser_rejects_oversized_inputs_without_panicking(extra in 0usize..4096) {
        // A request line far past MAX_REQUEST_LINE must produce an error
        // (and a 414-mapped one), not an allocation blowup or panic.
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(9000 + extra));
        let mut reader = long.as_bytes();
        prop_assert!(read_request(&mut reader).is_err());

        // An oversized declared body is refused before it is read.
        let big_body = "POST /v1/synth HTTP/1.1\r\ncontent-length: 9999999\r\n\r\n";
        let mut reader = big_body.as_bytes();
        prop_assert!(read_request(&mut reader).is_err());
    }
}
