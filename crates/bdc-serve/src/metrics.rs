//! Lock-free serving metrics: per-endpoint counters and latency
//! histograms with p50/p95/p99 estimates.
//!
//! Latencies land in log₂-spaced microsecond buckets (`[2^i, 2^{i+1})` µs,
//! 40 buckets ≈ 18 minutes of range), so recording is two atomic adds and
//! a quantile is a cumulative walk at snapshot time. Quantiles report the
//! bucket's upper bound — a ≤ 2× overestimate, which is the right bias for
//! a latency gate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of log₂ latency buckets.
const BUCKETS: usize = 40;

/// How recently a fault/retry event must have occurred for `/healthz` to
/// report `degraded` instead of `ok`.
const HEALTH_WINDOW: Duration = Duration::from_secs(10);

/// Sentinel for "no fault event observed yet".
const NEVER: u64 = u64::MAX;

/// The endpoints the server meters, plus a catch-all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `/healthz`.
    Healthz,
    /// `/v1/metrics`.
    Metrics,
    /// `/v1/library`.
    Library,
    /// `/v1/synth`.
    Synth,
    /// `/v1/depth`.
    Depth,
    /// `/v1/width`.
    Width,
    /// `/v1/ipc`.
    Ipc,
    /// `/v1/experiments` (the registry catalogue).
    Experiments,
    /// `/v1/experiment` (one rendered registry node).
    Experiment,
    /// `/v1/peer/artifact` (intra-fleet cache transfer).
    Peer,
    /// Anything else (404s, parse failures).
    Other,
}

impl Endpoint {
    /// All endpoints in metrics-report order.
    pub fn all() -> [Endpoint; 11] {
        [
            Endpoint::Healthz,
            Endpoint::Metrics,
            Endpoint::Library,
            Endpoint::Synth,
            Endpoint::Depth,
            Endpoint::Width,
            Endpoint::Ipc,
            Endpoint::Experiments,
            Endpoint::Experiment,
            Endpoint::Peer,
            Endpoint::Other,
        ]
    }

    /// Metric label.
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Library => "library",
            Endpoint::Synth => "synth",
            Endpoint::Depth => "depth",
            Endpoint::Width => "width",
            Endpoint::Ipc => "ipc",
            Endpoint::Experiments => "experiments",
            Endpoint::Experiment => "experiment",
            Endpoint::Peer => "peer",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            Endpoint::Healthz => 0,
            Endpoint::Metrics => 1,
            Endpoint::Library => 2,
            Endpoint::Synth => 3,
            Endpoint::Depth => 4,
            Endpoint::Width => 5,
            Endpoint::Ipc => 6,
            Endpoint::Experiments => 7,
            Endpoint::Experiment => 8,
            Endpoint::Peer => 9,
            Endpoint::Other => 10,
        }
    }
}

/// A latency histogram with log₂ µs buckets.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation in microseconds.
    pub fn record_us(&self, us: u64) {
        let idx = (63 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / n as f64 / 1000.0
        }
    }

    /// The `q`-quantile (0 < q ≤ 1) in milliseconds: the upper bound of
    /// the bucket holding the q·count-th observation, 0 when empty.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return (1u64 << (i + 1)) as f64 / 1000.0;
            }
        }
        (1u64 << BUCKETS) as f64 / 1000.0
    }
}

/// Counters for one endpoint.
#[derive(Debug, Default)]
pub struct EndpointStats {
    /// Requests routed here.
    pub requests: AtomicU64,
    /// 2xx responses.
    pub ok: AtomicU64,
    /// 4xx responses other than 429.
    pub client_error: AtomicU64,
    /// 429 load-shed responses.
    pub shed: AtomicU64,
    /// 5xx responses.
    pub server_error: AtomicU64,
    /// Latency histogram (request read → response written).
    pub latency: Histogram,
}

impl EndpointStats {
    /// Classifies a finished request.
    pub fn record(&self, status: u16, us: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let class = match status {
            429 => &self.shed,
            200..=299 => &self.ok,
            400..=499 => &self.client_error,
            _ => &self.server_error,
        };
        class.fetch_add(1, Ordering::Relaxed);
        self.latency.record_us(us);
    }
}

/// The server-wide metrics registry.
#[derive(Debug)]
pub struct Registry {
    start: Instant,
    endpoints: [EndpointStats; 11],
    /// Connections accepted since boot.
    pub connections: AtomicU64,
    /// Connections shed at accept time (conn queue full).
    pub connections_shed: AtomicU64,
    /// Requests answered from the response cache.
    pub cache_hits: AtomicU64,
    /// Requests that joined an identical in-flight computation.
    pub coalesced: AtomicU64,
    /// Requests shed by the engine's bounded queue.
    pub queue_shed: AtomicU64,
    /// Batches the engine executed.
    pub batches: AtomicU64,
    /// Jobs across all executed batches.
    pub batched_jobs: AtomicU64,
    /// Engine job retries after a contained panic.
    pub task_retries: AtomicU64,
    /// Submissions whose compute deadline expired (answered 503).
    pub deadline_expired: AtomicU64,
    /// Requests refused at admission because their propagated
    /// `x-bdc-deadline-ms` budget could not cover the endpoint's observed
    /// latency (fast 503, never queued).
    pub deadline_refused: AtomicU64,
    /// Requests answered from the analytic quick path while the engine was
    /// in queue-pressure brownout (`x-bdc-degraded` responses).
    pub brownout_served: AtomicU64,
    /// Uptime (µs) of the most recent fault/retry event; [`NEVER`] when
    /// none has occurred. Drives the `degraded` health state.
    last_fault_us: AtomicU64,
}

impl Default for Registry {
    fn default() -> Self {
        Registry {
            // bdc-lint: allow(D002, uptime telemetry for /v1/metrics, not artifact bytes)
            start: Instant::now(),
            endpoints: Default::default(),
            connections: AtomicU64::new(0),
            connections_shed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            queue_shed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_jobs: AtomicU64::new(0),
            task_retries: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            deadline_refused: AtomicU64::new(0),
            brownout_served: AtomicU64::new(0),
            last_fault_us: AtomicU64::new(NEVER),
        }
    }
}

impl Registry {
    /// Stats for one endpoint.
    pub fn endpoint(&self, e: Endpoint) -> &EndpointStats {
        &self.endpoints[e.index()]
    }

    /// Seconds since the registry was created.
    pub fn uptime_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Stamps a fault/retry event (an engine retry, a contained panic, an
    /// expired deadline) so `/healthz` reports `degraded` for the next
    /// [`HEALTH_WINDOW`].
    pub fn note_fault_event(&self) {
        self.last_fault_us
            .store(self.start.elapsed().as_micros() as u64, Ordering::Relaxed);
    }

    /// The health state this registry implies: `draining` when the server
    /// is shutting down, `degraded` for [`HEALTH_WINDOW`] after a
    /// fault/retry event, else `ok`.
    pub fn health(&self, draining: bool) -> &'static str {
        if draining {
            return "draining";
        }
        let last = self.last_fault_us.load(Ordering::Relaxed);
        if last != NEVER {
            let now = self.start.elapsed().as_micros() as u64;
            if now.saturating_sub(last) <= HEALTH_WINDOW.as_micros() as u64 {
                return "degraded";
            }
        }
        "ok"
    }

    /// Renders the registry as the `/v1/metrics` JSON document. (This
    /// endpoint reports wall-clock state and is deliberately excluded from
    /// the byte-determinism contract.) `health` is the current
    /// `ok|degraded|draining` state (see [`Registry::health`]).
    pub fn snapshot(
        &self,
        queue_depth: usize,
        queue_cap: usize,
        health: &str,
    ) -> crate::json::Json {
        use crate::json::Json;
        let load = |a: &AtomicU64| Json::Int(a.load(Ordering::Relaxed) as i64);
        let endpoints = Endpoint::all()
            .into_iter()
            .map(|e| {
                let s = self.endpoint(e);
                (
                    e.name().to_string(),
                    Json::Obj(vec![
                        ("requests".into(), load(&s.requests)),
                        ("ok".into(), load(&s.ok)),
                        ("client_error".into(), load(&s.client_error)),
                        ("shed".into(), load(&s.shed)),
                        ("server_error".into(), load(&s.server_error)),
                        ("mean_ms".into(), Json::Num(s.latency.mean_ms())),
                        ("p50_ms".into(), Json::Num(s.latency.quantile_ms(0.50))),
                        ("p95_ms".into(), Json::Num(s.latency.quantile_ms(0.95))),
                        ("p99_ms".into(), Json::Num(s.latency.quantile_ms(0.99))),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("uptime_s".into(), Json::Num(self.uptime_s())),
            ("health".into(), Json::str(health)),
            ("endpoints".into(), Json::Obj(endpoints)),
            (
                "engine".into(),
                Json::Obj(vec![
                    ("cache_hits".into(), load(&self.cache_hits)),
                    ("coalesced".into(), load(&self.coalesced)),
                    ("queue_shed".into(), load(&self.queue_shed)),
                    ("batches".into(), load(&self.batches)),
                    ("batched_jobs".into(), load(&self.batched_jobs)),
                    ("queue_depth".into(), Json::Int(queue_depth as i64)),
                    ("queue_cap".into(), Json::Int(queue_cap as i64)),
                    ("task_retries".into(), load(&self.task_retries)),
                    ("deadline_expired".into(), load(&self.deadline_expired)),
                    ("deadline_refused".into(), load(&self.deadline_refused)),
                    ("brownout_served".into(), load(&self.brownout_served)),
                ]),
            ),
            (
                "connections".into(),
                Json::Obj(vec![
                    ("accepted".into(), load(&self.connections)),
                    ("shed".into(), load(&self.connections_shed)),
                ]),
            ),
            // Process-wide survival counters from the execution layer
            // (quarantines, rebuilds, injected faults) — same shape as the
            // run-manifest `faults` object.
            (
                "faults".into(),
                bdc_core::registry::fault_counters_json(&bdc_exec::faults::counters()),
            ),
            // Fine-grained stage-cache telemetry: per-stage hit/miss
            // counters since boot, plus the "what changed" list — every
            // stage that recomputed (recorded a miss) in this process.
            ("stages".into(), {
                let counters = bdc_exec::stage_counters();
                let changed: Vec<Json> = counters
                    .iter()
                    .filter(|(_, (_, misses))| *misses > 0)
                    .map(|(name, _)| Json::str(name.as_str()))
                    .collect();
                Json::Obj(vec![
                    (
                        "counters".into(),
                        Json::Obj(
                            counters
                                .iter()
                                .map(|(name, (hits, misses))| {
                                    (
                                        name.clone(),
                                        Json::Obj(vec![
                                            ("hits".into(), Json::Int(*hits as i64)),
                                            ("misses".into(), Json::Int(*misses as i64)),
                                        ]),
                                    )
                                })
                                .collect(),
                        ),
                    ),
                    ("changed".into(), Json::Arr(changed)),
                ])
            }),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let h = Histogram::default();
        for us in [100u64, 200, 400, 800, 100_000] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 5);
        let p50 = h.quantile_ms(0.5);
        // Third observation (400 µs) lands in [256, 512) µs → upper bound
        // 0.512 ms.
        assert!((p50 - 0.512).abs() < 1e-9, "p50 = {p50}");
        // p99 picks the slowest bucket.
        assert!(h.quantile_ms(0.99) >= 100.0);
        assert!(h.mean_ms() > 0.0);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile_ms(0.99), 0.0);
        assert_eq!(h.mean_ms(), 0.0);
    }

    #[test]
    fn record_classifies_statuses() {
        let s = EndpointStats::default();
        s.record(200, 10);
        s.record(400, 10);
        s.record(429, 10);
        s.record(500, 10);
        assert_eq!(s.ok.load(Ordering::Relaxed), 1);
        assert_eq!(s.client_error.load(Ordering::Relaxed), 1);
        assert_eq!(s.shed.load(Ordering::Relaxed), 1);
        assert_eq!(s.server_error.load(Ordering::Relaxed), 1);
        assert_eq!(s.requests.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn snapshot_has_required_fields() {
        let r = Registry::default();
        r.endpoint(Endpoint::Width).record(200, 1500);
        let snap = r.snapshot(3, 64, r.health(false));
        let width = snap.get("endpoints").and_then(|e| e.get("width")).unwrap();
        assert_eq!(width.get("requests").and_then(|v| v.as_u64()), Some(1));
        let engine = snap.get("engine").unwrap();
        assert_eq!(engine.get("queue_cap").and_then(|v| v.as_u64()), Some(64));
        assert_eq!(
            engine.get("deadline_refused").and_then(|v| v.as_u64()),
            Some(0)
        );
        assert_eq!(
            engine.get("brownout_served").and_then(|v| v.as_u64()),
            Some(0)
        );
        assert!(snap.get("health").is_some());
        let faults = snap.get("faults").unwrap();
        assert!(faults.get("quarantined").is_some());
        assert!(faults.get("retries").is_some());
        let stages = snap.get("stages").unwrap();
        assert!(stages.get("counters").is_some());
        assert!(stages.get("changed").is_some());
    }

    #[test]
    fn health_degrades_on_fault_events_and_drains_on_shutdown() {
        let r = Registry::default();
        assert_eq!(r.health(false), "ok");
        r.note_fault_event();
        assert_eq!(r.health(false), "degraded");
        // Draining wins over everything.
        assert_eq!(r.health(true), "draining");
    }
}
