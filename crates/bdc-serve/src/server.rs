//! The TCP front end: accept loop, connection workers, graceful shutdown.
//!
//! Topology: one non-blocking acceptor thread feeds accepted sockets to a
//! fixed pool of connection workers over a bounded channel (the first
//! admission-control layer — when every worker is busy and the hand-off
//! queue is full, the acceptor answers `429` itself and closes). Each
//! worker speaks keep-alive HTTP/1.1, routes requests, and resolves
//! computational calls through the [`Engine`] (the second layer: response
//! cache → coalesce → bounded queue → shed).
//!
//! Shutdown: `SIGTERM`/`SIGINT` set a flag (see [`install_signal_handlers`])
//! that [`ServerHandle::run_until_signalled`] polls; tests and the bench
//! harness call [`ServerHandle::shutdown`] directly. Either way the
//! listener stops accepting, workers finish their current request, the
//! engine drains its queue, and every thread is joined before the handle
//! returns — no request is abandoned mid-computation.

use std::io::{BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bdc_core::Process;

use crate::api::{self, Route};
use crate::engine::{Engine, EngineConfig, Submission};
use crate::http::{self, Response};
use crate::metrics::{Endpoint, Registry};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8731`; port 0 picks an ephemeral
    /// port (reported by [`ServerHandle::port`]).
    pub addr: String,
    /// Connection-worker threads.
    pub conn_threads: usize,
    /// Accepted sockets that may wait for a worker before the acceptor
    /// sheds new connections with 429.
    pub conn_backlog: usize,
    /// Engine knobs (queue bound, batch size, response-cache bound).
    pub engine: EngineConfig,
    /// Processes whose libraries are characterized before the listener
    /// starts accepting (cold-start avoidance).
    pub warm: Vec<Process>,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout — a stalled client that stops
    /// draining its receive window can otherwise pin a worker forever.
    pub write_timeout: Duration,
    /// Shard identity in a `bdc-cluster` fleet: when set, every response
    /// carries an `x-bdc-shard: N` header so clients and the byte-identity
    /// tests can see which worker answered. `None` for a standalone
    /// server (no header — single-process bodies stay byte-identical to
    /// pre-cluster builds).
    pub shard: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8731".into(),
            conn_threads: 8,
            conn_backlog: 64,
            engine: EngineConfig::default(),
            warm: Vec::new(),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            shard: None,
        }
    }
}

/// Signal-driven shutdown flag, shared with the handlers below.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// Installs `SIGINT`/`SIGTERM` handlers that request a graceful shutdown
/// (idempotent; unix only — elsewhere it is a no-op and ctrl-c falls back
/// to process default).
#[cfg(unix)]
pub fn install_signal_handlers() {
    // The one unsafe block in the workspace: registering a libc signal
    // handler has no safe std equivalent, and the handler body is
    // async-signal-safe (a single atomic store).
    #[allow(unsafe_code)]
    {
        extern "C" fn on_signal(_sig: i32) {
            SIGNALLED.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        unsafe {
            signal(2, on_signal); // SIGINT
            signal(15, on_signal); // SIGTERM
        }
    }
}

/// No-op fallback for non-unix targets.
#[cfg(not(unix))]
pub fn install_signal_handlers() {}

/// Whether a shutdown signal has been observed.
pub fn signalled() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}

/// A running server: join handles plus the shared engine and metrics.
pub struct ServerHandle {
    port: u16,
    engine: Arc<Engine<api::ApiCall>>,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Arc<Registry> {
        self.engine.metrics()
    }

    /// Blocks until a shutdown signal arrives, then shuts down gracefully.
    pub fn run_until_signalled(self) {
        while !signalled() {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.shutdown();
    }

    /// Graceful shutdown: stop accepting, drain the engine, join every
    /// thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.engine.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Binds the listener, spawns the engine, acceptor, and connection
/// workers, and returns the handle. The library warm-up (if requested)
/// happens before binding so the first accepted request never pays
/// characterization latency.
///
/// # Errors
/// Propagates bind failures.
pub fn start(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    for p in &cfg.warm {
        let _ = bdc_core::process::shared_kit(*p);
    }
    let listener = TcpListener::bind(&cfg.addr)?;
    let port = listener.local_addr()?.port();
    listener.set_nonblocking(true)?;

    let metrics = Arc::new(Registry::default());
    let engine: Arc<Engine<api::ApiCall>> = Engine::new(cfg.engine.clone(), Arc::clone(&metrics));
    let stop = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::new();

    // Engine batching loop.
    {
        let engine = Arc::clone(&engine);
        threads.push(
            std::thread::Builder::new()
                .name("bdc-serve-engine".into())
                .spawn(move || engine.run(api::execute))?,
        );
    }

    // Connection hand-off channel (bounded: admission-control layer 1).
    let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(cfg.conn_backlog);
    let rx = Arc::new(Mutex::new(rx));
    for i in 0..cfg.conn_threads.max(1) {
        let rx = Arc::clone(&rx);
        let engine = Arc::clone(&engine);
        let metrics = Arc::clone(&metrics);
        let stop = Arc::clone(&stop);
        let timeouts = (cfg.read_timeout, cfg.write_timeout);
        let shard = cfg.shard;
        threads.push(
            std::thread::Builder::new()
                .name(format!("bdc-serve-conn-{i}"))
                .spawn(move || conn_worker(&rx, &engine, &metrics, &stop, timeouts, shard))?,
        );
    }

    // Acceptor.
    {
        let metrics = Arc::clone(&metrics);
        let stop = Arc::clone(&stop);
        threads.push(
            std::thread::Builder::new()
                .name("bdc-serve-accept".into())
                .spawn(move || acceptor(&listener, &tx, &metrics, &stop))?,
        );
    }

    Ok(ServerHandle {
        port,
        engine,
        stop,
        threads,
    })
}

fn acceptor(
    listener: &TcpListener,
    tx: &SyncSender<TcpStream>,
    metrics: &Registry,
    stop: &AtomicBool,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                metrics.connections.fetch_add(1, Ordering::Relaxed);
                match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(mut stream)) => {
                        // Every worker busy and the backlog full: shed at
                        // the door rather than queue unboundedly. A short
                        // write timeout keeps a stalled client from
                        // pinning the acceptor itself.
                        metrics.connections_shed.fetch_add(1, Ordering::Relaxed);
                        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                        let mut resp = Response::error(429, "server saturated; retry");
                        resp.extra_headers.push(("retry-after".into(), "1".into()));
                        let _ = resp.write_to(&mut stream, false);
                    }
                    Err(TrySendError::Disconnected(_)) => return,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    // Dropping `tx` disconnects the channel; workers drain and exit.
}

fn conn_worker(
    rx: &Mutex<Receiver<TcpStream>>,
    engine: &Engine<api::ApiCall>,
    metrics: &Registry,
    stop: &AtomicBool,
    timeouts: (Duration, Duration),
    shard: Option<usize>,
) {
    loop {
        // Poll with a timeout so workers also notice `stop` when idle.
        let stream = {
            let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
            guard.recv_timeout(Duration::from_millis(100))
        };
        match stream {
            Ok(stream) => {
                serve_connection(stream, engine, metrics, stop, timeouts, shard);
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Serves one keep-alive connection until close, error, or shutdown.
fn serve_connection(
    stream: TcpStream,
    engine: &Engine<api::ApiCall>,
    metrics: &Registry,
    stop: &AtomicBool,
    (read_timeout, write_timeout): (Duration, Duration),
    shard: Option<usize>,
) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_write_timeout(Some(write_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        // bdc-lint: allow(D002, latency telemetry; responses carry no Date header)
        let t0 = Instant::now();
        let request = match http::read_request(&mut reader) {
            Ok(r) => r,
            Err(e) => {
                let status = e.status();
                if status != 0 {
                    metrics
                        .endpoint(Endpoint::Other)
                        .record(status, t0.elapsed().as_micros() as u64);
                    let _ = Response::error(status, &format!("{e:?}")).write_to(&mut writer, false);
                }
                return;
            }
        };
        let keep_alive = request.keep_alive && !stop.load(Ordering::SeqCst);
        let (endpoint, mut response) = handle(&request, engine);
        if let Some(shard) = shard {
            // Identity rides in a header so the *body* stays byte-identical
            // across shards — the cluster acceptance gate.
            response
                .extra_headers
                .push(("x-bdc-shard".into(), shard.to_string()));
        }
        metrics
            .endpoint(endpoint)
            .record(response.status, t0.elapsed().as_micros() as u64);
        if response.write_to(&mut writer, keep_alive).is_err() {
            return;
        }
        if !keep_alive {
            let _ = writer.flush();
            return;
        }
    }
}

/// Observations an endpoint's latency histogram needs before its p95 is
/// trusted for deadline admission — refusing on one slow cold-start sample
/// would starve the endpoint of the warm traffic that brings p95 down.
const DEADLINE_MIN_SAMPLES: u64 = 20;

/// Routes and resolves one request. Exposed for the in-process bench
/// harness and tests.
pub fn handle(request: &http::Request, engine: &Engine<api::ApiCall>) -> (Endpoint, Response) {
    match api::route(request) {
        Route::Healthz => (Endpoint::Healthz, api::healthz(engine.health())),
        // The catalogue is static metadata — answered inline, no engine
        // round-trip.
        Route::Experiments => (Endpoint::Experiments, api::experiments_response()),
        Route::Metrics => {
            let snap = engine.metrics().snapshot(
                engine.queue_depth(),
                engine.queue_cap(),
                engine.health(),
            );
            (
                Endpoint::Metrics,
                Response::json(200, snap.encode().into_bytes()),
            )
        }
        // Peer cache transfers touch only the artifact directory — no
        // engine round-trip, no computation, so a peer fetch can never
        // cascade into another peer fetch.
        Route::PeerFetch { name, key } => (Endpoint::Peer, api::peer_fetch_response(&name, key)),
        Route::PeerStore { name, key } => (
            Endpoint::Peer,
            api::peer_store_response(&name, key, &request.body),
        ),
        Route::Error(endpoint, response) => (endpoint, response),
        Route::Call(call) => {
            let endpoint = call.endpoint();
            // Deadline admission: a request whose propagated budget cannot
            // cover this endpoint's observed p95 is refused before it
            // queues — a fast 503 beats a slow one that still misses the
            // deadline and wasted a flight. Requests without the header
            // take the unmodified path (the byte-determinism gate).
            if let Some(ms) = request.deadline_ms {
                let stats = engine.metrics().endpoint(endpoint);
                let hopeless = ms == 0
                    || (stats.latency.count() >= DEADLINE_MIN_SAMPLES
                        && stats.latency.quantile_ms(0.95) > ms as f64);
                if hopeless {
                    engine
                        .metrics()
                        .deadline_refused
                        .fetch_add(1, Ordering::Relaxed);
                    let mut r = Response::error(503, "deadline budget cannot cover this endpoint");
                    r.extra_headers
                        .push(("x-bdc-deadline-refused".into(), "1".into()));
                    return (endpoint, r);
                }
            }
            // Brownout: under sustained queue pressure, endpoints with an
            // analytic estimate answer from it instead of joining the
            // queue — explicitly flagged, never cached.
            if engine.sample_pressure() {
                if let Some(mut r) = api::degraded_response(&call) {
                    engine
                        .metrics()
                        .brownout_served
                        .fetch_add(1, Ordering::Relaxed);
                    r.extra_headers
                        .push(("x-bdc-degraded".into(), "brownout".into()));
                    return (endpoint, r);
                }
            }
            let key = call.cache_key();
            let budget = request.deadline_ms.map(Duration::from_millis);
            let response = match engine.submit_with_budget(key, call, budget) {
                Submission::CacheHit(r) | Submission::Done(r) => (*r).clone(),
                Submission::Shed => {
                    let mut r = Response::error(429, "queue full; retry");
                    r.extra_headers.push(("retry-after".into(), "1".into()));
                    r
                }
                Submission::TimedOut => {
                    // The compute deadline expired. 503 + Retry-After
                    // tells a well-behaved client the result may well be
                    // cached by the time it retries.
                    let mut r = Response::error(503, "compute deadline exceeded; retry");
                    r.extra_headers.push(("retry-after".into(), "2".into()));
                    r
                }
                Submission::ShuttingDown => Response::error(503, "shutting down"),
            };
            (endpoint, response)
        }
    }
}
