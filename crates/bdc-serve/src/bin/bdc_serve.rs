//! The `bdc_serve` daemon binary.
//!
//! ```text
//! bdc_serve [--addr HOST:PORT] [--conn-threads N] [--queue-cap N]
//!           [--max-batch N] [--cache-cap N] [--warm organic,silicon]
//!           [--deadline-ms N] [--max-retries N]
//! ```
//!
//! Boots the serving stack from `bdc-serve`, optionally pre-characterizes
//! libraries (`--warm`), prints the bound address, and runs until SIGTERM
//! or ctrl-c, then shuts down gracefully (drains the queue, joins every
//! thread) and exits 0.
//!
//! When launched by the `bdc cluster` supervisor with a complete cluster
//! identity (`BDC_SHARDS` + `BDC_SHARD_ID` + `BDC_PEER_PORTS`), the
//! worker additionally installs the peer cache-fill hooks
//! ([`bdc_serve::peer`]) — local cache misses first ask the artifact's
//! ring-owner shard before recomputing — and stamps every response with
//! its `x-bdc-shard` header.

use bdc_core::Process;
use bdc_serve::ServeConfig;

fn usage() -> ! {
    eprintln!(
        "usage: bdc_serve [--addr HOST:PORT] [--conn-threads N] [--queue-cap N] \
         [--max-batch N] [--cache-cap N] [--warm organic,silicon] \
         [--deadline-ms N] [--max-retries N]"
    );
    std::process::exit(2)
}

fn parse_args() -> ServeConfig {
    let mut cfg = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("bdc_serve: {flag} needs a {what}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("host:port"),
            "--conn-threads" => cfg.conn_threads = parse_num(&flag, &value("count")),
            "--queue-cap" => cfg.engine.queue_cap = parse_num(&flag, &value("count")),
            "--max-batch" => cfg.engine.max_batch = parse_num(&flag, &value("count")).max(1),
            "--cache-cap" => cfg.engine.cache_cap = parse_num(&flag, &value("count")),
            "--deadline-ms" => {
                cfg.engine.wait_timeout = std::time::Duration::from_millis(parse_num(
                    &flag,
                    &value("milliseconds"),
                ) as u64)
            }
            "--max-retries" => cfg.engine.max_retries = parse_num(&flag, &value("count")) as u32,
            "--warm" => {
                for name in value("process list").split(',') {
                    match name.trim() {
                        "organic" => cfg.warm.push(Process::Organic),
                        "silicon" => cfg.warm.push(Process::Silicon),
                        other => {
                            eprintln!("bdc_serve: unknown process `{other}`");
                            usage()
                        }
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("bdc_serve: unknown flag `{other}`");
                usage()
            }
        }
    }
    cfg
}

fn parse_num(flag: &str, raw: &str) -> usize {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("bdc_serve: {flag} must be a positive integer, got `{raw}`");
        usage()
    })
}

fn main() {
    let env = match bdc_exec::env_config() {
        Ok(env) => env,
        Err(e) => {
            eprintln!("bdc_serve: {e}");
            std::process::exit(2);
        }
    };
    let mut cfg = parse_args();
    if let Some(cluster) = &env.cluster {
        cfg.shard = bdc_serve::peer::install_cluster_hooks(cluster);
        if let Some(shard) = cfg.shard {
            println!(
                "bdc_serve: shard {shard}/{} (ring seed {}, peer fetch {})",
                cluster.shards,
                cluster.ring_seed,
                if cluster.peer_ports.is_empty() {
                    "off"
                } else {
                    "on"
                }
            );
        }
    }
    bdc_serve::install_signal_handlers();
    if !cfg.warm.is_empty() {
        let names: Vec<&str> = cfg.warm.iter().map(|p| p.name()).collect();
        println!("bdc_serve: warming libraries: {}", names.join(", "));
    }
    match bdc_serve::start(cfg) {
        Ok(handle) => {
            println!(
                "bdc_serve: listening on 127.0.0.1:{} (SIGTERM/ctrl-c to stop)",
                handle.port()
            );
            handle.run_until_signalled();
            println!("bdc_serve: drained and stopped cleanly");
        }
        Err(e) => {
            eprintln!("bdc_serve: bind failed: {e}");
            std::process::exit(1);
        }
    }
}
