//! Re-export of the deterministic JSON codec, which moved to
//! [`bdc_exec::json`] so the experiment registry and the serving layer
//! share one float format and one hardened parser. Everything —
//! [`Json`](bdc_exec::json::Json), `parse`, the depth limit — is the same
//! set of items under the old path; existing `crate::json::` call sites
//! and external `bdc_serve::json::` users are unaffected.

pub use bdc_exec::json::*;
