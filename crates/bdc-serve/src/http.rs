//! Minimal HTTP/1.1 framing over any `Read`/`Write` pair (std-only).
//!
//! Supports what the serving API needs and nothing more: `GET`/`POST`,
//! request-target with query string, a bounded header block, and a
//! `Content-Length`-delimited body. Every limit is explicit so a hostile
//! peer can neither balloon memory nor panic the parser:
//!
//! | limit | value | violation |
//! |-------|-------|-----------|
//! | request line | 8 KiB | 414 URI Too Long |
//! | header count | 64    | 431 |
//! | header line  | 8 KiB | 431 |
//! | body         | 64 KiB | 413 |
//!
//! Responses carry a fixed, deterministic header set (no `Date`), so a
//! response's bytes are a pure function of its status and body.

use std::io::{BufRead, Write};

/// Largest accepted request line (method + target + version).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Largest accepted single header line.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body.
pub const MAX_BODY: usize = 64 * 1024;

/// Request methods the API serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `GET`.
    Get,
    /// `POST`.
    Post,
}

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The method.
    pub method: Method,
    /// Path component of the request target (before `?`).
    pub path: String,
    /// Raw query string (after `?`, empty if absent).
    pub query: String,
    /// Body bytes (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
    /// Remaining request budget from an `x-bdc-deadline-ms` header, if the
    /// caller propagated one (absent header = no deadline, today's
    /// behavior). A malformed value is ignored rather than rejected — a
    /// deadline is advisory quality-of-service metadata, not framing.
    pub deadline_ms: Option<u64>,
}

/// Why a request could not be parsed, with the HTTP status that reports it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The peer closed before sending a request line (normal keep-alive
    /// termination; no response owed).
    ConnectionClosed,
    /// Malformed framing → status 400.
    Bad(String),
    /// Method not `GET`/`POST` → 405.
    MethodNotAllowed(String),
    /// Request line over limit → 414.
    UriTooLong,
    /// Header block over limit → 431.
    HeadersTooLarge,
    /// Body over limit → 413.
    BodyTooLarge,
    /// Socket error mid-request; connection is unusable.
    Io(String),
}

impl ParseError {
    /// The HTTP status code that reports this error (0 for cases where no
    /// response can or should be written).
    pub fn status(&self) -> u16 {
        match self {
            ParseError::ConnectionClosed | ParseError::Io(_) => 0,
            ParseError::Bad(_) => 400,
            ParseError::MethodNotAllowed(_) => 405,
            ParseError::UriTooLong => 414,
            ParseError::BodyTooLarge => 413,
            ParseError::HeadersTooLarge => 431,
        }
    }
}

/// Reads one line terminated by `\n` (tolerating `\r\n`), bounded by
/// `limit` bytes. `Ok(None)` means clean EOF before any byte.
fn read_line(reader: &mut impl BufRead, limit: usize) -> Result<Option<String>, ParseError> {
    let mut buf = Vec::new();
    loop {
        let chunk = reader
            .fill_buf()
            .map_err(|e| ParseError::Io(e.to_string()))?;
        if chunk.is_empty() {
            return if buf.is_empty() {
                Ok(None)
            } else {
                Err(ParseError::Bad("truncated line".into()))
            };
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.map_or(chunk.len(), |i| i + 1);
        if buf.len() + take > limit + 2 {
            // Consume what we sized up so the caller can still answer.
            reader.consume(take);
            return Err(ParseError::UriTooLong);
        }
        buf.extend_from_slice(&chunk[..take]);
        reader.consume(take);
        if newline.is_some() {
            break;
        }
    }
    while matches!(buf.last(), Some(b'\n' | b'\r')) {
        buf.pop();
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| ParseError::Bad("non-utf8 header data".into()))
}

/// Parses one request off the stream.
///
/// # Errors
/// See [`ParseError`]; [`ParseError::ConnectionClosed`] is the normal end
/// of a keep-alive connection.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, ParseError> {
    let line = match read_line(reader, MAX_REQUEST_LINE)? {
        None => return Err(ParseError::ConnectionClosed),
        Some(l) if l.is_empty() => return Err(ParseError::Bad("empty request line".into())),
        Some(l) => l,
    };
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(ParseError::Bad("malformed request line".into())),
    };
    let method = match method {
        "GET" => Method::Get,
        "POST" => Method::Post,
        other => return Err(ParseError::MethodNotAllowed(other.to_string())),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::Bad(format!("unsupported version `{version}`")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    if !path.starts_with('/') {
        return Err(ParseError::Bad("request target must be absolute".into()));
    }

    let mut content_length = 0usize;
    // HTTP/1.1 defaults to keep-alive; 1.0 to close.
    let mut keep_alive = version == "HTTP/1.1";
    let mut deadline_ms = None;
    for n in 0..=MAX_HEADERS {
        let line = match read_line(reader, MAX_HEADER_LINE) {
            Ok(Some(l)) => l,
            Ok(None) => return Err(ParseError::Bad("truncated header block".into())),
            Err(ParseError::UriTooLong) => return Err(ParseError::HeadersTooLarge),
            Err(e) => return Err(e),
        };
        if line.is_empty() {
            break;
        }
        if n == MAX_HEADERS {
            return Err(ParseError::HeadersTooLarge);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::Bad(format!("malformed header `{line}`")));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse::<usize>()
                .map_err(|_| ParseError::Bad(format!("bad content-length `{value}`")))?;
            if content_length > MAX_BODY {
                return Err(ParseError::BodyTooLarge);
            }
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            // Chunked bodies are out of scope for this API.
            return Err(ParseError::Bad("transfer-encoding not supported".into()));
        } else if name.eq_ignore_ascii_case("x-bdc-deadline-ms") {
            deadline_ms = value.parse::<u64>().ok();
        }
    }

    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        std::io::Read::read_exact(reader, &mut body)
            .map_err(|e| ParseError::Io(format!("body read: {e}")))?;
    }
    Ok(Request {
        method,
        path,
        query,
        body,
        keep_alive,
        deadline_ms,
    })
}

/// Decodes a query string (`a=1&b=x%20y`) into `(key, value)` pairs, in
/// order. `%XX` and `+` decoding applied to both keys and values;
/// malformed escapes are kept literally rather than rejected.
pub fn parse_query(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| {
            let (k, v) = kv.split_once('=').unwrap_or((kv, ""));
            (percent_decode(k), percent_decode(v))
        })
        .collect()
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                match bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// A response ready to serialize: status, fixed content type, body, and
/// optional extra headers (e.g. `Retry-After`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes (always JSON in this API).
    pub body: Vec<u8>,
    /// Extra headers as `(name, value)` pairs.
    pub extra_headers: Vec<(String, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            body: body.into(),
            extra_headers: Vec::new(),
        }
    }

    /// An error response with a JSON `{"error": ...}` body.
    pub fn error(status: u16, message: &str) -> Response {
        let body = crate::json::Json::Obj(vec![("error".into(), crate::json::Json::str(message))])
            .encode();
        Response::json(status, body.into_bytes())
    }

    /// The canonical reason phrase for the statuses this server emits.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            414 => "URI Too Long",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }

    /// Serializes status line + headers + body. Deliberately carries no
    /// `Date` header: the byte stream must be a pure function of the
    /// response content (see the determinism tests).
    pub fn to_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\n",
            self.status,
            Self::reason(self.status),
            self.body.len()
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str(if keep_alive {
            "connection: keep-alive\r\n\r\n"
        } else {
            "connection: close\r\n\r\n"
        });
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }

    /// Writes the serialized response to a stream.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        w.write_all(&self.to_bytes(keep_alive))?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, ParseError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get_with_query() {
        let r = parse("GET /v1/width?process=organic&fe=2 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.path, "/v1/width");
        assert_eq!(
            parse_query(&r.query),
            vec![
                ("process".to_string(), "organic".to_string()),
                ("fe".to_string(), "2".to_string())
            ]
        );
        assert!(r.keep_alive);
    }

    #[test]
    fn parses_post_with_body() {
        let r = parse(
            "POST /v1/synth HTTP/1.1\r\nContent-Length: 7\r\nConnection: close\r\n\r\n{\"a\":1}",
        )
        .unwrap();
        assert_eq!(r.method, Method::Post);
        assert_eq!(r.body, b"{\"a\":1}");
        assert!(!r.keep_alive);
    }

    #[test]
    fn rejects_oversized_body_with_413() {
        let e = parse("POST /x HTTP/1.1\r\nContent-Length: 9999999\r\n\r\n").unwrap_err();
        assert_eq!(e.status(), 413);
    }

    #[test]
    fn rejects_oversized_request_line_with_414() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE));
        assert_eq!(parse(&raw).unwrap_err().status(), 414);
    }

    #[test]
    fn rejects_too_many_headers_with_431() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..100 {
            raw.push_str(&format!("x-h{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        assert_eq!(parse(&raw).unwrap_err().status(), 431);
    }

    #[test]
    fn rejects_unknown_method_with_405() {
        assert_eq!(parse("PUT / HTTP/1.1\r\n\r\n").unwrap_err().status(), 405);
    }

    #[test]
    fn clean_eof_is_connection_closed() {
        assert_eq!(parse("").unwrap_err(), ParseError::ConnectionClosed);
    }

    #[test]
    fn captures_deadline_header_and_ignores_junk() {
        let r = parse("GET / HTTP/1.1\r\nx-bdc-deadline-ms: 250\r\n\r\n").unwrap();
        assert_eq!(r.deadline_ms, Some(250));
        let r = parse("GET / HTTP/1.1\r\nX-BDC-Deadline-Ms: 9\r\n\r\n").unwrap();
        assert_eq!(r.deadline_ms, Some(9));
        // Malformed budgets degrade to "no deadline", not a 400: the
        // header is advisory metadata.
        let r = parse("GET / HTTP/1.1\r\nx-bdc-deadline-ms: soon\r\n\r\n").unwrap();
        assert_eq!(r.deadline_ms, None);
        let r = parse("GET / HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.deadline_ms, None);
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn response_bytes_are_deterministic() {
        let r = Response::json(200, b"{}".to_vec());
        assert_eq!(r.to_bytes(true), r.to_bytes(true));
        let text = String::from_utf8(r.to_bytes(false)).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(!text.to_ascii_lowercase().contains("date:"));
    }
}
