#![warn(missing_docs)]

//! `bdc-serve` — a batching, cache-backed experiment-serving daemon.
//!
//! The Figure-10 flow answers questions — *what does the organic library
//! look like? what clock does a 12-stage, 2-wide core reach? what IPC does
//! mcf see on it?* — but until this crate the only way to ask was to run a
//! one-shot experiment binary. `bdc-serve` turns the flow into a service:
//! a std-only HTTP/1.1-over-TCP daemon whose JSON endpoints cover library
//! characterization (`/v1/library`), core synthesis (`/v1/synth`),
//! depth/width sweep points (`/v1/depth`, `/v1/width`), and per-workload
//! IPC simulation (`/v1/ipc`), plus `/v1/metrics` and `/healthz`.
//!
//! The serving pipeline (DESIGN.md §5f):
//!
//! ```text
//! accept ─ bounded hand-off ─ HTTP parse ─ route/validate
//!                                   │
//!                     response cache (bounded, FIFO)
//!                                   │ miss
//!                     coalesce onto in-flight flight
//!                                   │ new
//!                     bounded queue ── full → 429 + Retry-After
//!                                   │
//!                     batch → bdc_exec::par_map → flow
//!                          (TechKit::load_or_build, synthesize_core_cached,
//!                           measure_ipc_cached — all artifact-cached)
//! ```
//!
//! Two properties are load-bearing and pinned by tests:
//!
//! * **Byte determinism** — a given query's response body is byte-identical
//!   whether computed serially, under 8 workers, from the artifact cache,
//!   or from the response cache (`tests/determinism.rs`).
//! * **Bounded overload** — every queue is bounded; saturation produces
//!   `429 Too Many Requests` with `Retry-After`, never a panic or
//!   unbounded growth (`tests/e2e.rs`, the engine unit tests).

pub mod api;
pub mod client;
pub mod engine;
pub mod http;
pub mod json;
pub mod metrics;
pub mod peer;
pub mod server;

pub use engine::{Engine, EngineConfig, Submission};
pub use http::{Request, Response};
pub use json::Json;
pub use metrics::{Endpoint, Registry};
pub use server::{install_signal_handlers, signalled, start, ServeConfig, ServerHandle};
