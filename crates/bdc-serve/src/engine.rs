//! The serving engine: request coalescing, batching, admission control,
//! and a bounded response cache.
//!
//! Three mechanisms keep the daemon stable and fast under load:
//!
//! * **Coalescing** — requests are keyed by their canonical content hash;
//!   a request whose key matches an in-flight computation joins that
//!   flight instead of queueing a duplicate. N identical concurrent
//!   queries cost one computation.
//! * **Batching** — distinct queued requests are drained in batches and
//!   executed together with [`bdc_exec::par_map`], so a burst of cold
//!   queries fans out across the deterministic worker pool instead of
//!   running head-of-line serially.
//! * **Admission control** — the work queue is bounded. When it is full,
//!   [`Engine::submit`] returns [`Submission::Shed`] immediately and the
//!   HTTP layer answers `429 Too Many Requests` with `Retry-After`. The
//!   queue can never grow without bound, and overload never panics.
//!
//! Completed responses enter a FIFO-bounded response cache keyed by the
//! same hash, so warm repeats are answered with a map lookup — no queue,
//! no pool, microseconds. Responses are `Arc`ed; a cache hit is a clone of
//! a pointer.
//!
//! The engine is generic over the job type and executor so tests can
//! drive it with synthetic workloads (e.g. a barrier-gated executor that
//! deterministically holds the queue full to exercise shedding).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::http::Response;
use crate::metrics::Registry;

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Most jobs admitted to the queue at once; beyond this, submissions
    /// are shed with 429.
    pub queue_cap: usize,
    /// Most jobs drained into one `par_map` batch.
    pub max_batch: usize,
    /// Most entries the response cache holds (FIFO eviction).
    pub cache_cap: usize,
    /// Per-request compute deadline: how long a submitter waits for its
    /// flight before giving up (503 + `Retry-After`).
    pub wait_timeout: Duration,
    /// How many times a panicking executor job is retried (with seeded
    /// backoff) before it becomes a 500.
    pub max_retries: u32,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            queue_cap: 64,
            max_batch: 16,
            cache_cap: 4096,
            wait_timeout: Duration::from_secs(300),
            max_retries: 2,
        }
    }
}

/// Consecutive pressured queue samples before the server enters brownout
/// (see [`Engine::sample_pressure`]). A short streak filters out a single
/// transient burst; sustained pressure trips within a handful of requests.
const BROWNOUT_AFTER: u64 = 3;

/// An in-flight computation that identical requests wait on.
#[derive(Debug, Default)]
struct Flight {
    slot: Mutex<Option<Arc<Response>>>,
    done: Condvar,
}

impl Flight {
    fn complete(&self, response: Arc<Response>) {
        *self.slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(response);
        self.done.notify_all();
    }

    fn wait(&self, timeout: Duration) -> Option<Arc<Response>> {
        let guard = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        let (guard, result) = self
            .done
            .wait_timeout_while(guard, timeout, |slot| slot.is_none())
            .unwrap_or_else(|p| p.into_inner());
        if result.timed_out() && guard.is_none() {
            None
        } else {
            guard.clone()
        }
    }
}

/// What happened to a submitted request.
pub enum Submission {
    /// Answered from the response cache.
    CacheHit(Arc<Response>),
    /// Computed (either this submission queued it, or it coalesced onto an
    /// identical in-flight request).
    Done(Arc<Response>),
    /// The bounded queue was full; answer 429.
    Shed,
    /// The flight missed the per-request compute deadline; answer 503
    /// with `Retry-After`.
    TimedOut,
    /// The engine is shutting down; answer 503.
    ShuttingDown,
}

struct EngineState<J> {
    queue: VecDeque<(u64, J)>,
    // Both maps are only ever indexed by key — iteration order never
    // reaches a response byte (eviction walks `cache_order`, FIFO).
    // bdc-lint: allow(D001, flights is keyed lookup only, never iterated)
    flights: HashMap<u64, Arc<Flight>>,
    // bdc-lint: allow(D001, cache is keyed lookup only, eviction uses cache_order)
    cache: HashMap<u64, Arc<Response>>,
    cache_order: VecDeque<u64>,
    shutdown: bool,
}

/// The coalescing, batching request engine. `J` is the job payload handed
/// to the executor; the executor must be a pure function of the job so
/// that coalescing and caching are semantically invisible.
pub struct Engine<J> {
    state: Mutex<EngineState<J>>,
    work: Condvar,
    cfg: EngineConfig,
    metrics: Arc<Registry>,
    /// Consecutive queue samples at or above half capacity — the brownout
    /// trigger (see [`Engine::sample_pressure`]).
    pressure_streak: AtomicU64,
}

impl<J: Send + Sync + 'static> Engine<J> {
    /// Creates an engine (no worker thread yet; see [`Engine::run`]).
    pub fn new(cfg: EngineConfig, metrics: Arc<Registry>) -> Arc<Engine<J>> {
        Arc::new(Engine {
            state: Mutex::new(EngineState {
                queue: VecDeque::new(),
                // bdc-lint: allow(D001, constructing the keyed-lookup maps declared above)
                flights: HashMap::new(),
                // bdc-lint: allow(D001, constructing the keyed-lookup maps declared above)
                cache: HashMap::new(),
                cache_order: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            cfg,
            metrics,
            pressure_streak: AtomicU64::new(0),
        })
    }

    /// The engine's metrics registry.
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.metrics
    }

    /// Current queue depth (for the metrics snapshot).
    pub fn queue_depth(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .queue
            .len()
    }

    /// The configured queue capacity.
    pub fn queue_cap(&self) -> usize {
        self.cfg.queue_cap
    }

    /// Samples queue pressure for the brownout decision: one sample per
    /// routed computational request. Returns `true` once the queue has sat
    /// at or above half capacity for [`BROWNOUT_AFTER`] consecutive
    /// samples; any relaxed sample resets the streak. With no load the
    /// streak never forms, so the normal serving path is byte-inert.
    pub fn sample_pressure(&self) -> bool {
        if self.queue_depth() * 2 >= self.cfg.queue_cap.max(1) {
            self.pressure_streak.fetch_add(1, Ordering::Relaxed) + 1 >= BROWNOUT_AFTER
        } else {
            self.pressure_streak.store(0, Ordering::Relaxed);
            false
        }
    }

    /// Submits a job keyed by its canonical content hash and blocks until
    /// it resolves (cache hit, computed, shed, or timed out).
    pub fn submit(&self, key: u64, job: J) -> Submission {
        self.submit_with_budget(key, job, None)
    }

    /// [`Engine::submit`] bounded by a propagated deadline budget: the
    /// flight wait is the smaller of the configured compute deadline and
    /// the caller's remaining `x-bdc-deadline-ms` budget, so a request
    /// whose upstream deadline expires stops occupying a connection worker
    /// the moment its budget runs out (the flight itself keeps computing —
    /// the result still lands in the response cache for the retry).
    pub fn submit_with_budget(&self, key: u64, job: J, budget: Option<Duration>) -> Submission {
        let flight = {
            let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
            if st.shutdown {
                return Submission::ShuttingDown;
            }
            if let Some(hit) = st.cache.get(&key) {
                self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Submission::CacheHit(Arc::clone(hit));
            }
            if let Some(flight) = st.flights.get(&key) {
                self.metrics.coalesced.fetch_add(1, Ordering::Relaxed);
                Arc::clone(flight)
            } else {
                if st.queue.len() >= self.cfg.queue_cap {
                    self.metrics.queue_shed.fetch_add(1, Ordering::Relaxed);
                    return Submission::Shed;
                }
                let flight = Arc::new(Flight::default());
                st.flights.insert(key, Arc::clone(&flight));
                st.queue.push_back((key, job));
                self.work.notify_one();
                flight
            }
        };
        let wait = match budget {
            Some(b) => self.cfg.wait_timeout.min(b),
            None => self.cfg.wait_timeout,
        };
        match flight.wait(wait) {
            Some(response) => Submission::Done(response),
            None => {
                self.metrics
                    .deadline_expired
                    .fetch_add(1, Ordering::Relaxed);
                self.metrics.note_fault_event();
                Submission::TimedOut
            }
        }
    }

    /// Whether [`Engine::shutdown`] has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .shutdown
    }

    /// The `ok|degraded|draining` health state `/healthz` reports.
    pub fn health(&self) -> &'static str {
        self.metrics.health(self.is_shutting_down())
    }

    /// Runs the batching loop until [`Engine::shutdown`]: drain up to
    /// `max_batch` queued jobs, execute them as one index-ordered
    /// [`bdc_exec::par_map`] fan-out, publish each result to its flight
    /// and the response cache. Call from a dedicated thread.
    pub fn run(&self, execute: impl Fn(&J) -> Response + Sync) {
        loop {
            let batch: Vec<(u64, J)> = {
                let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
                while st.queue.is_empty() && !st.shutdown {
                    st = self.work.wait(st).unwrap_or_else(|p| p.into_inner());
                }
                if st.queue.is_empty() && st.shutdown {
                    return;
                }
                let n = st.queue.len().min(self.cfg.max_batch);
                st.queue.drain(..n).collect()
            };
            self.metrics.batches.fetch_add(1, Ordering::Relaxed);
            self.metrics
                .batched_jobs
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            // Each job is guarded individually: a panicking executor
            // (whether a genuine bug or an injected `task_panic` fault) is
            // retried with seeded backoff, then answered 500 — one bad job
            // never takes its batchmates (or the daemon) down.
            let max_retries = self.cfg.max_retries;
            let results = bdc_exec::par_map(&batch, |(key, job)| {
                let site = format!("serve-job-{key:016x}");
                let mut attempt: u64 = 0;
                loop {
                    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        bdc_exec::faults::maybe_panic(&site, attempt);
                        execute(job)
                    }));
                    match caught {
                        Ok(response) => break Arc::new(response),
                        Err(_) => {
                            bdc_exec::faults::note_panic_contained();
                            self.metrics.note_fault_event();
                            if attempt >= u64::from(max_retries) {
                                break Arc::new(Response::error(500, "internal error"));
                            }
                            bdc_exec::faults::note_retry();
                            self.metrics.task_retries.fetch_add(1, Ordering::Relaxed);
                            attempt += 1;
                            std::thread::sleep(bdc_exec::faults::backoff_delay(&site, attempt));
                        }
                    }
                }
            });
            let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
            for ((key, _), response) in batch.iter().zip(results) {
                // 5xx responses are transient (a contained panic that
                // exhausted its retries) — caching one would hand every
                // future retry the same stale failure. 2xx/4xx are pure
                // functions of the job and cache safely.
                if response.status < 500 {
                    if st.cache.len() >= self.cfg.cache_cap {
                        if let Some(old) = st.cache_order.pop_front() {
                            st.cache.remove(&old);
                        }
                    }
                    if st.cache.insert(*key, Arc::clone(&response)).is_none() {
                        st.cache_order.push_back(*key);
                    }
                }
                if let Some(flight) = st.flights.remove(key) {
                    flight.complete(response);
                }
            }
        }
    }

    /// Initiates shutdown: pending queued jobs still execute, new
    /// submissions are refused, and [`Engine::run`] returns once the queue
    /// drains.
    pub fn shutdown(&self) {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        st.shutdown = true;
        self.work.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Barrier;

    fn engine(cfg: EngineConfig) -> Arc<Engine<u64>> {
        Engine::new(cfg, Arc::new(Registry::default()))
    }

    fn spawn_runner(
        e: &Arc<Engine<u64>>,
        execute: impl Fn(&u64) -> Response + Sync + Send + 'static,
    ) -> std::thread::JoinHandle<()> {
        let e = Arc::clone(e);
        std::thread::spawn(move || e.run(execute))
    }

    fn body(job: &u64) -> Response {
        Response::json(200, format!("{{\"job\":{job}}}").into_bytes())
    }

    #[test]
    fn computes_then_serves_from_cache() {
        let e = engine(EngineConfig::default());
        let calls = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&calls);
        let runner = spawn_runner(&e, move |j| {
            c.fetch_add(1, Ordering::SeqCst);
            body(j)
        });
        let first = match e.submit(7, 7) {
            Submission::Done(r) => r,
            _ => panic!("expected Done"),
        };
        let second = match e.submit(7, 7) {
            Submission::CacheHit(r) => r,
            _ => panic!("expected CacheHit"),
        };
        assert_eq!(first.body, second.body);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        e.shutdown();
        runner.join().unwrap();
    }

    #[test]
    fn identical_concurrent_requests_coalesce() {
        let e = engine(EngineConfig::default());
        let calls = Arc::new(AtomicU64::new(0));
        let gate = Arc::new(Barrier::new(2)); // executor + test
        let (c, g) = (Arc::clone(&calls), Arc::clone(&gate));
        let runner = spawn_runner(&e, move |j| {
            c.fetch_add(1, Ordering::SeqCst);
            g.wait();
            body(j)
        });
        // First submission occupies the executor...
        let e1 = Arc::clone(&e);
        let t1 = std::thread::spawn(move || e1.submit(42, 42));
        // ...wait until it is actually in flight, then pile on a duplicate.
        while calls.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        let e2 = Arc::clone(&e);
        let t2 = std::thread::spawn(move || e2.submit(42, 42));
        // Give the duplicate a moment to coalesce, then release the gate.
        while e.metrics().coalesced.load(Ordering::Relaxed) == 0 {
            std::thread::yield_now();
        }
        gate.wait();
        for t in [t1, t2] {
            match t.join().unwrap() {
                Submission::Done(r) => assert_eq!(r.status, 200),
                _ => panic!("expected Done"),
            }
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1, "coalesced into one call");
        e.shutdown();
        runner.join().unwrap();
    }

    #[test]
    fn full_queue_sheds_deterministically() {
        let cfg = EngineConfig {
            queue_cap: 2,
            max_batch: 1,
            ..EngineConfig::default()
        };
        let e = engine(cfg);
        let gate = Arc::new(Barrier::new(2));
        let g = Arc::clone(&gate);
        let runner = spawn_runner(&e, move |j| {
            g.wait();
            body(j)
        });
        // Job 1 is picked up by the runner and blocks on the barrier; only
        // then do jobs 2 and 3 fill the queue, so job 4 must shed.
        let e1 = Arc::clone(&e);
        let mut waiters = vec![std::thread::spawn(move || e1.submit(1, 1))];
        while e.metrics().batches.load(Ordering::Relaxed) == 0 {
            std::thread::yield_now();
        }
        for key in 2..=3u64 {
            let e = Arc::clone(&e);
            waiters.push(std::thread::spawn(move || e.submit(key, key)));
        }
        while e.queue_depth() < 2 {
            std::thread::yield_now();
        }
        assert!(matches!(e.submit(4, 4), Submission::Shed));
        assert_eq!(e.metrics().queue_shed.load(Ordering::Relaxed), 1);
        // Release all batches (runner blocks once per 1-job batch).
        for _ in 0..3 {
            gate.wait();
        }
        for w in waiters {
            assert!(matches!(w.join().unwrap(), Submission::Done(_)));
        }
        e.shutdown();
        runner.join().unwrap();
    }

    #[test]
    fn cache_is_fifo_bounded() {
        let cfg = EngineConfig {
            cache_cap: 2,
            ..EngineConfig::default()
        };
        let e = engine(cfg);
        let runner = spawn_runner(&e, body);
        for key in 0..5u64 {
            assert!(matches!(e.submit(key, key), Submission::Done(_)));
        }
        // Only the two newest keys remain cached.
        assert!(matches!(e.submit(4, 4), Submission::CacheHit(_)));
        assert!(matches!(e.submit(0, 0), Submission::Done(_)));
        e.shutdown();
        runner.join().unwrap();
    }

    #[test]
    fn executor_panic_becomes_500_not_a_crash() {
        let e = engine(EngineConfig::default());
        let runner = spawn_runner(&e, |j| {
            assert!(*j != 13, "boom");
            body(j)
        });
        match e.submit(13, 13) {
            Submission::Done(r) => assert_eq!(r.status, 500),
            _ => panic!("expected Done(500)"),
        }
        // The engine survives and keeps serving.
        assert!(matches!(e.submit(1, 1), Submission::Done(_)));
        e.shutdown();
        runner.join().unwrap();
    }

    #[test]
    fn exhausted_500_is_not_cached_and_recomputes() {
        let cfg = EngineConfig {
            max_retries: 0,
            ..EngineConfig::default()
        };
        let e = engine(cfg);
        let calls = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&calls);
        // First execution panics, every later one succeeds: a transient
        // fault, exactly what retry-after-500 is for.
        let runner = spawn_runner(&e, move |j| {
            assert!(c.fetch_add(1, Ordering::SeqCst) != 0, "transient boom");
            body(j)
        });
        match e.submit(13, 13) {
            Submission::Done(r) => assert_eq!(r.status, 500),
            _ => panic!("expected Done(500)"),
        }
        // The 500 must not have entered the response cache: the retry
        // recomputes and gets the recovered 200.
        match e.submit(13, 13) {
            Submission::Done(r) => assert_eq!(r.status, 200),
            other => panic!(
                "expected recomputed Done(200), got {}",
                match other {
                    Submission::CacheHit(_) => "CacheHit (stale 500 cached)",
                    _ => "non-Done",
                }
            ),
        }
        e.shutdown();
        runner.join().unwrap();
    }

    #[test]
    fn cache_policy_boundary_is_exactly_500() {
        // 2xx/4xx are pure functions of the job and cache; 5xx are
        // transient and must never cache. Probe both sides of the line:
        // 499 (still a deterministic client-class answer here) caches,
        // 500 recomputes.
        let e = engine(EngineConfig::default());
        let calls = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&calls);
        let runner = spawn_runner(&e, move |j| {
            c.fetch_add(1, Ordering::SeqCst);
            match *j {
                4 => Response::error(422, "bad spec"),
                499 => Response::error(499, "client closed"),
                _ => Response::error(500, "upstream down"),
            }
        });
        // A deterministic 4xx enters the cache: one execution, then a hit.
        match e.submit(4, 4) {
            Submission::Done(r) => assert_eq!(r.status, 422),
            _ => panic!("expected Done(422)"),
        }
        match e.submit(4, 4) {
            Submission::CacheHit(r) => assert_eq!(r.status, 422),
            _ => panic!("422 should be served from cache"),
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        // status 499 is still on the cacheable side of the boundary.
        match e.submit(499, 499) {
            Submission::Done(r) => assert_eq!(r.status, 499),
            _ => panic!("expected Done(499)"),
        }
        assert!(matches!(e.submit(499, 499), Submission::CacheHit(_)));
        // An executor-returned 500 (not just a contained panic) must also
        // stay out of the cache: the resubmit recomputes.
        match e.submit(9, 9) {
            Submission::Done(r) => assert_eq!(r.status, 500),
            _ => panic!("expected Done(500)"),
        }
        let before = calls.load(Ordering::SeqCst);
        match e.submit(9, 9) {
            Submission::Done(r) => assert_eq!(r.status, 500),
            Submission::CacheHit(_) => panic!("500 must never be cached"),
            _ => panic!("expected Done(500)"),
        }
        assert_eq!(calls.load(Ordering::SeqCst), before + 1);
        e.shutdown();
        runner.join().unwrap();
    }

    #[test]
    fn deadline_budget_bounds_the_flight_wait() {
        let e = engine(EngineConfig::default());
        let gate = Arc::new(Barrier::new(2));
        let g = Arc::clone(&gate);
        let runner = spawn_runner(&e, move |j| {
            g.wait();
            body(j)
        });
        // A 10 ms budget against an executor parked on a barrier: the
        // submission must give up at the budget, not at the 300 s default.
        let verdict = e.submit_with_budget(5, 5, Some(Duration::from_millis(10)));
        assert!(matches!(verdict, Submission::TimedOut));
        assert_eq!(e.metrics().deadline_expired.load(Ordering::Relaxed), 1);
        // Release the parked executor; its result still lands in the cache
        // for the retry.
        gate.wait();
        loop {
            match e.submit(5, 5) {
                Submission::CacheHit(r) => {
                    assert_eq!(r.status, 200);
                    break;
                }
                Submission::Done(r) => {
                    assert_eq!(r.status, 200);
                    break;
                }
                _ => std::thread::yield_now(),
            }
        }
        e.shutdown();
        runner.join().unwrap();
    }

    #[test]
    fn pressure_streak_trips_and_resets() {
        let e = engine(EngineConfig {
            queue_cap: 2,
            ..EngineConfig::default()
        });
        // Empty queue: never pressured, streak cannot form.
        for _ in 0..10 {
            assert!(!e.sample_pressure());
        }
        // Fill the queue past half capacity without a runner draining it.
        {
            let mut st = e.state.lock().unwrap();
            st.queue.push_back((1, 1));
        }
        assert!(!e.sample_pressure(), "streak 1 of 3");
        assert!(!e.sample_pressure(), "streak 2 of 3");
        assert!(e.sample_pressure(), "streak 3 trips brownout");
        assert!(e.sample_pressure(), "stays tripped under pressure");
        // Draining below the threshold resets the streak.
        {
            let mut st = e.state.lock().unwrap();
            st.queue.clear();
        }
        assert!(!e.sample_pressure());
        assert!(!e.sample_pressure(), "streak restarted from zero");
    }

    #[test]
    fn shutdown_refuses_new_work() {
        let e = engine(EngineConfig::default());
        let runner = spawn_runner(&e, body);
        e.shutdown();
        runner.join().unwrap();
        assert!(matches!(e.submit(1, 1), Submission::ShuttingDown));
    }
}
