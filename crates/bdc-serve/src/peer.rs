//! Peer-to-peer cache fill for a sharded fleet.
//!
//! A `bdc_serve` worker booted with a complete cluster identity
//! (`BDC_SHARDS` + `BDC_SHARD_ID` + `BDC_PEER_PORTS`, see
//! [`bdc_exec::cluster`]) installs the artifact cache's process-wide peer
//! hooks here:
//!
//! * **fetch-on-miss** — a local cache miss first asks the artifact's
//!   ring-owner shard (`GET /v1/peer/artifact?name=&key=`) for the
//!   checksum-framed bytes; a verified answer is stored locally and the
//!   expensive recomputation is skipped.
//! * **push-on-store** — a freshly built artifact is offered to its
//!   ring-owner (`POST /v1/peer/artifact`) so later misses on *other*
//!   shards find it at the owner.
//!
//! Both directions use short timeouts ([`PEER_TIMEOUT`]): a slow peer must
//! always cost less than recomputing locally, and every failure degrades
//! to a plain miss (the cache's failures-are-misses contract). When this
//! shard *is* the owner no fetch is attempted and nothing is counted —
//! owner-side misses recompute, which is what seeds the fleet.

use std::time::Duration;

use bdc_exec::cluster::{artifact_slot, ClusterEnv, Ring, DEFAULT_VNODES};
use bdc_exec::{faults, frame_artifact, install_peer_hooks, PeerFetch, PeerHooks};

use crate::client::Connection;

/// Connect/read/write deadline for peer cache transfers. Artifacts are at
/// most a few hundred KiB over loopback; anything slower than this is a
/// sick peer and recomputing locally is the better spend.
pub const PEER_TIMEOUT: Duration = Duration::from_secs(5);

/// Installs the process-wide peer cache-fill hooks for a worker with a
/// complete cluster identity; returns the shard id for the response
/// header. Returns the shard id without installing hooks when
/// `peer_ports` is empty (a labeled shard with peer fetch unconfigured),
/// and `None` when the identity is incomplete (fleet-level tools such as
/// the router and supervisor, which are not shards).
pub fn install_cluster_hooks(env: &ClusterEnv) -> Option<usize> {
    let shard_id = env.shard_id?;
    if env.peer_ports.is_empty() {
        return Some(shard_id);
    }
    let ring = Ring::new(env.shards, DEFAULT_VNODES, env.ring_seed);
    let ports = env.peer_ports.clone();
    let fetch_ring = ring.clone();
    let fetch_ports = ports.clone();
    install_peer_hooks(Some(PeerHooks {
        fetch: std::sync::Arc::new(move |name, key| {
            let owner = fetch_ring.owner(artifact_slot(name, key));
            if owner == shard_id {
                return PeerFetch::NotAttempted;
            }
            // An injected partition severs the fetch before any bytes
            // move; the failures-are-misses contract turns it into a
            // local recompute.
            if faults::inject_partition(&format!("peer-fetch-{name}-{key:016x}"), 0) {
                return PeerFetch::Miss;
            }
            let addr = format!("127.0.0.1:{}", fetch_ports[owner]);
            let path = format!("/v1/peer/artifact?name={name}&key={key:016x}");
            match Connection::open_with_timeout(&addr, PEER_TIMEOUT).and_then(|mut c| c.get(&path))
            {
                Ok(r) if r.status == 200 => match String::from_utf8(r.body) {
                    Ok(raw) => PeerFetch::Framed(raw),
                    Err(_) => PeerFetch::Miss,
                },
                _ => PeerFetch::Miss,
            }
        }),
        push: std::sync::Arc::new(move |name, key, text| {
            let owner = ring.owner(artifact_slot(name, key));
            if owner == shard_id {
                return;
            }
            // A partitioned push simply isn't offered — later misses on
            // other shards recompute, which is the pre-peer behavior.
            if faults::inject_partition(&format!("peer-push-{name}-{key:016x}"), 0) {
                return;
            }
            let addr = format!("127.0.0.1:{}", ports[owner]);
            let path = format!("/v1/peer/artifact?name={name}&key={key:016x}");
            let accepted = Connection::open_with_timeout(&addr, PEER_TIMEOUT)
                .and_then(|mut c| c.post(&path, &frame_artifact(text)))
                .map(|r| r.status == 200)
                .unwrap_or(false);
            if accepted {
                faults::note_peer_push();
            }
        }),
    }));
    Some(shard_id)
}
