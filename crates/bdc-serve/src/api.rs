//! The experiment-serving API: parse a request into a canonical
//! [`ApiCall`], execute it against the flow, and render a deterministic
//! JSON body.
//!
//! Endpoints (see the README "Serving" section for `curl` examples):
//!
//! | endpoint | verb | answers |
//! |----------|------|---------|
//! | `/healthz` | GET | liveness |
//! | `/v1/metrics` | GET | counters + latency quantiles |
//! | `/v1/library` | GET | characterized library summary per process |
//! | `/v1/synth` | GET/POST | synthesized core for an explicit [`CoreSpec`] |
//! | `/v1/depth` | GET | the Figure-11 depth point at N stages |
//! | `/v1/width` | GET | the Figure-13/14 width point at (fe, be) |
//! | `/v1/ipc` | GET/POST | cycle-accurate IPC for (spec, workload) |
//! | `/v1/experiments` | GET | the experiment-registry catalogue |
//! | `/v1/experiment` | GET/POST | one rendered registry node, by id |
//! | `/v1/peer/artifact` | GET/POST | intra-fleet cache transfer (framed bytes) |
//!
//! Every computational endpoint accepts its parameters as query-string
//! pairs on GET or a JSON object on POST; both normalize into the same
//! [`ApiCall`], so the engine coalesces and caches them identically.
//! Execution dispatches into `bdc_core::registry`: the classic flow
//! endpoints map onto [`Query`] and the experiment endpoints onto the
//! registry catalogue, so a served body and a `bdc run` render can never
//! drift apart.
//!
//! **Determinism contract:** for a fixed [`ApiCall`], the response body is
//! byte-identical regardless of worker count, cache state, batching, or
//! transport — floats are rendered with shortest round-trip formatting
//! from bit-identical flow outputs (`tests/determinism.rs` pins this).

use bdc_core::registry::{self, query::Query};
use bdc_core::{CoreSpec, Process, StageKind, TechKit};
use bdc_uarch::Workload;

use crate::http::{parse_query, Method, Request, Response};
use crate::json::{self, Json};
use crate::metrics::Endpoint;

/// Simulation budget bounds for `/v1/ipc` (keeps one request from tying
/// up the pool for minutes).
const MAX_OUTER: u64 = 2_000;
/// Instruction-cap bound for `/v1/ipc`.
const MAX_INSTRUCTIONS: u64 = 5_000_000;
/// Most stage splits a synth spec may carry.
const MAX_SPLITS: usize = 16;

/// A validated, canonical API request. Two requests that mean the same
/// query compare equal and share one cache key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiCall {
    /// `/v1/library`.
    Library {
        /// Which process library.
        process: Process,
    },
    /// `/v1/synth` — an explicit design point.
    Synth {
        /// Which process library.
        process: Process,
        /// The design point.
        spec: CoreSpec,
    },
    /// `/v1/depth` — the paper's split-the-critical-stage chain.
    Depth {
        /// Which process library.
        process: Process,
        /// Total pipeline stages (9–15).
        stages: usize,
    },
    /// `/v1/width` — a superscalar width point.
    Width {
        /// Which process library.
        process: Process,
        /// Front-end width (1–6).
        fe: usize,
        /// Back-end pipes (3–7).
        be: usize,
    },
    /// `/v1/ipc` — cycle-accurate simulation of one workload.
    Ipc {
        /// The design point simulated.
        spec: CoreSpec,
        /// Which workload kernel.
        workload: Workload,
        /// Outer-loop trip count.
        outer: u32,
        /// Retired-instruction cap.
        instructions: u64,
    },
    /// `/v1/experiment` — one rendered registry node.
    Experiment {
        /// Registry node id (validated against the catalogue at parse
        /// time, so execution cannot miss).
        id: String,
        /// Whether to render at the quick budget.
        quick: bool,
    },
}

impl ApiCall {
    /// The metrics endpoint this call belongs to.
    pub fn endpoint(&self) -> Endpoint {
        match self {
            ApiCall::Library { .. } => Endpoint::Library,
            ApiCall::Synth { .. } => Endpoint::Synth,
            ApiCall::Depth { .. } => Endpoint::Depth,
            ApiCall::Width { .. } => Endpoint::Width,
            ApiCall::Ipc { .. } => Endpoint::Ipc,
            ApiCall::Experiment { .. } => Endpoint::Experiment,
        }
    }

    /// Canonical content hash — the coalescing/caching key. Hashes the
    /// `Debug` form of the canonical call, so any representational
    /// variants (GET vs POST, query-parameter order) collapse. The
    /// nominal library *stage* keys are folded into the salt, so a
    /// device-model or characterization recipe change re-keys every
    /// cached response that could embody library-derived bytes.
    pub fn cache_key(&self) -> u64 {
        use bdc_core::{library_stage_key, ParamOverlay, Process};
        let nominal = ParamOverlay::default();
        let libs = format!(
            "libs={:016x},{:016x}",
            library_stage_key(Process::Organic, &nominal),
            library_stage_key(Process::Silicon, &nominal)
        );
        bdc_exec::fnv1a(&["bdc-serve-v2", &libs, &format!("{self:?}")])
    }
}

/// How a parsed request routes.
pub enum Route {
    /// `/healthz`.
    Healthz,
    /// `/v1/metrics`.
    Metrics,
    /// `/v1/experiments` — the static registry catalogue.
    Experiments,
    /// `GET /v1/peer/artifact?name=&key=` — a peer shard asks for the
    /// framed bytes of one cache artifact.
    PeerFetch {
        /// Artifact name (validated: `[A-Za-z0-9_-]{1,64}`).
        name: String,
        /// Artifact cache key.
        key: u64,
    },
    /// `POST /v1/peer/artifact?name=&key=` — a peer shard offers the
    /// framed bytes of a freshly built artifact (body = the frame).
    PeerStore {
        /// Artifact name (validated as for [`Route::PeerFetch`]).
        name: String,
        /// Artifact cache key.
        key: u64,
    },
    /// A computational endpoint.
    Call(ApiCall),
    /// A routing/validation failure, already rendered.
    Error(Endpoint, Response),
}

/// Routes a parsed HTTP request.
pub fn route(req: &Request) -> Route {
    match req.path.as_str() {
        "/healthz" => Route::Healthz,
        "/v1/metrics" => Route::Metrics,
        "/v1/experiments" => Route::Experiments,
        "/v1/peer/artifact" => match parse_peer_params(req) {
            Ok((name, key)) => match req.method {
                Method::Get => Route::PeerFetch { name, key },
                Method::Post => Route::PeerStore { name, key },
            },
            Err(msg) => Route::Error(Endpoint::Peer, Response::error(400, &msg)),
        },
        "/v1/library" | "/v1/synth" | "/v1/depth" | "/v1/width" | "/v1/ipc" | "/v1/experiment" => {
            let endpoint = match req.path.as_str() {
                "/v1/library" => Endpoint::Library,
                "/v1/synth" => Endpoint::Synth,
                "/v1/depth" => Endpoint::Depth,
                "/v1/width" => Endpoint::Width,
                "/v1/experiment" => Endpoint::Experiment,
                _ => Endpoint::Ipc,
            };
            match parse_call(req) {
                Ok(call) => Route::Call(call),
                Err(msg) => Route::Error(endpoint, Response::error(400, &msg)),
            }
        }
        _ => Route::Error(
            Endpoint::Other,
            Response::error(404, &format!("no such endpoint `{}`", req.path)),
        ),
    }
}

/// Parses and validates the `/v1/peer/artifact` addressing parameters.
/// Peer requests carry raw framed bytes in the body (POST) so, unlike the
/// computational endpoints, the address lives entirely in the query
/// string; unknown parameters are rejected (the `BDC_FAULTS` discipline —
/// a typo must not silently address a different artifact).
fn parse_peer_params(req: &Request) -> Result<(String, u64), String> {
    let mut name = None;
    let mut key = None;
    for (k, v) in parse_query(&req.query) {
        match k.as_str() {
            "name" => name = Some(v),
            "key" => key = Some(v),
            other => return Err(format!("unknown peer parameter `{other}`")),
        }
    }
    let name = name.ok_or("`name` is required")?;
    let valid = !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_');
    if !valid {
        return Err(format!(
            "`name` must be 1-64 characters of [A-Za-z0-9_-], got `{name}`"
        ));
    }
    let key = key.ok_or("`key` is required")?;
    if key.len() != 16 || !key.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!("`key` must be exactly 16 hex digits, got `{key}`"));
    }
    let key = u64::from_str_radix(&key, 16).map_err(|e| format!("`key`: {e}"))?;
    Ok((name, key))
}

/// Answers `GET /v1/peer/artifact`: the framed on-disk bytes of the
/// addressed artifact, verified before shipping (a corrupt local copy is a
/// 404 — the asking shard recomputes rather than trusting bad bytes).
/// Reads the cache directory directly and never computes, so a peer fetch
/// can never recurse into another peer fetch.
pub fn peer_fetch_response(name: &str, key: u64) -> Response {
    let cache = bdc_exec::ArtifactCache::shared();
    if !cache.is_enabled() {
        return Response::error(404, "artifact cache is disabled on this shard");
    }
    match std::fs::read_to_string(cache.path_for(name, key)) {
        Ok(raw) if bdc_exec::unframe_artifact(&raw).is_ok() => {
            Response::json(200, raw.into_bytes())
        }
        Ok(_) => Response::error(404, "artifact failed verification"),
        Err(_) => Response::error(404, "artifact not present"),
    }
}

/// Answers `POST /v1/peer/artifact`: verifies the framed body and stores
/// it as a replica (never re-offering it onward — a pushed artifact must
/// not trigger a push chain). A frame that fails verification is a 400;
/// storage failures degrade to `stored: false` per the cache's
/// failures-are-misses contract.
pub fn peer_store_response(name: &str, key: u64, body: &[u8]) -> Response {
    let raw = match std::str::from_utf8(body) {
        Ok(raw) => raw,
        Err(_) => return Response::error(400, "peer frame is not utf-8"),
    };
    let payload = match bdc_exec::unframe_artifact(raw) {
        Ok(payload) => payload,
        Err(e) => return Response::error(400, &format!("peer frame rejected: {e}")),
    };
    let stored = bdc_exec::ArtifactCache::shared().store_replica(name, key, payload);
    let body = if stored {
        "{\"stored\":true}"
    } else {
        "{\"stored\":false}"
    };
    Response::json(200, body.as_bytes().to_vec())
}

/// The merged parameter view: query pairs (GET) overlaid by JSON body
/// members (POST).
struct Params {
    pairs: Vec<(String, Json)>,
}

impl Params {
    fn from_request(req: &Request) -> Result<Params, String> {
        let mut pairs: Vec<(String, Json)> = parse_query(&req.query)
            .into_iter()
            .map(|(k, v)| (k, Json::Str(v)))
            .collect();
        if req.method == Method::Post && !req.body.is_empty() {
            let text = std::str::from_utf8(&req.body).map_err(|_| "body is not utf-8")?;
            match json::parse(text)? {
                Json::Obj(members) => pairs.extend(members),
                _ => return Err("body must be a JSON object".into()),
            }
        }
        Ok(Params { pairs })
    }

    fn get(&self, key: &str) -> Option<&Json> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    fn str_or(&self, key: &str, default: &str) -> String {
        match self.get(key) {
            Some(Json::Str(s)) => s.clone(),
            Some(v) => v.encode(),
            None => default.to_string(),
        }
    }

    /// An integer parameter that may arrive as a JSON number or a query
    /// string; bounds-checked.
    fn uint(&self, key: &str, default: u64, max: u64) -> Result<u64, String> {
        let v = match self.get(key) {
            None => return Ok(default),
            Some(v) => v,
        };
        let n = match v {
            Json::Int(i) if *i >= 0 => *i as u64,
            Json::Str(s) => s
                .trim()
                .parse::<u64>()
                .map_err(|_| format!("`{key}` must be a non-negative integer, got `{s}`"))?,
            _ => return Err(format!("`{key}` must be a non-negative integer")),
        };
        if n > max {
            return Err(format!("`{key}` = {n} exceeds the limit {max}"));
        }
        Ok(n)
    }
}

fn parse_process(p: &Params) -> Result<Process, String> {
    match p.str_or("process", "organic").as_str() {
        "organic" => Ok(Process::Organic),
        "silicon" => Ok(Process::Silicon),
        other => Err(format!(
            "`process` must be `organic` or `silicon`, got `{other}`"
        )),
    }
}

fn parse_spec(p: &Params) -> Result<CoreSpec, String> {
    let fe = p.uint("fe_width", 1, 6)? as usize;
    let be = p.uint("be_pipes", 3, 7)? as usize;
    if fe < 1 {
        return Err("`fe_width` must be 1-6".into());
    }
    if !(3..=7).contains(&be) {
        return Err("`be_pipes` must be 3-7".into());
    }
    let mut splits = Vec::new();
    match p.get("splits") {
        None => {}
        Some(Json::Arr(items)) => {
            for item in items {
                let name = item.as_str().ok_or("`splits` entries must be strings")?;
                splits.push(parse_split(name)?);
            }
        }
        // Query-string form: splits=fetch,issue
        Some(Json::Str(s)) if s.is_empty() => {}
        Some(Json::Str(s)) => {
            for name in s.split(',') {
                splits.push(parse_split(name.trim())?);
            }
        }
        Some(_) => return Err("`splits` must be an array of stage names".into()),
    }
    if splits.len() > MAX_SPLITS {
        return Err(format!("at most {MAX_SPLITS} splits are supported"));
    }
    Ok(CoreSpec {
        fe_width: fe,
        be_pipes: be,
        splits,
    })
}

fn parse_split(name: &str) -> Result<StageKind, String> {
    let kind = StageKind::from_name(name).ok_or(format!("unknown stage `{name}`"))?;
    if !kind.splittable() {
        return Err(format!("stage `{name}` cannot be split"));
    }
    Ok(kind)
}

fn parse_workload(p: &Params) -> Result<Workload, String> {
    let name = p.str_or("workload", "dhrystone");
    Workload::all()
        .into_iter()
        .find(|w| w.name() == name)
        .ok_or(format!("unknown workload `{name}`"))
}

fn parse_call(req: &Request) -> Result<ApiCall, String> {
    let p = Params::from_request(req)?;
    match req.path.as_str() {
        "/v1/library" => Ok(ApiCall::Library {
            process: parse_process(&p)?,
        }),
        "/v1/synth" => Ok(ApiCall::Synth {
            process: parse_process(&p)?,
            spec: parse_spec(&p)?,
        }),
        "/v1/depth" => {
            let stages = p.uint("stages", 9, 15)? as usize;
            if stages < 9 {
                return Err("`stages` must be 9-15".into());
            }
            Ok(ApiCall::Depth {
                process: parse_process(&p)?,
                stages,
            })
        }
        "/v1/width" => {
            let fe = p.uint("fe", 1, 6)? as usize;
            let be = p.uint("be", 3, 7)? as usize;
            if fe < 1 || be < 3 {
                return Err("`fe` must be 1-6 and `be` 3-7".into());
            }
            Ok(ApiCall::Width {
                process: parse_process(&p)?,
                fe,
                be,
            })
        }
        "/v1/ipc" => {
            // `budget=quick|full` presets, overridable by explicit knobs.
            let (outer0, instr0) = match p.str_or("budget", "quick").as_str() {
                "quick" => (25u64, 12_000u64),
                "full" => (400, 120_000),
                other => return Err(format!("`budget` must be `quick` or `full`, got `{other}`")),
            };
            Ok(ApiCall::Ipc {
                spec: parse_spec(&p)?,
                workload: parse_workload(&p)?,
                outer: p.uint("outer", outer0, MAX_OUTER)? as u32,
                instructions: p.uint("instructions", instr0, MAX_INSTRUCTIONS)?,
            })
        }
        "/v1/experiment" => {
            let id = p.str_or("id", "");
            if id.is_empty() {
                return Err("`id` is required (list ids at /v1/experiments)".into());
            }
            if registry::find(&id).is_none() {
                return Err(format!(
                    "unknown experiment id `{id}` (list ids at /v1/experiments)"
                ));
            }
            let quick = match p.str_or("budget", "quick").as_str() {
                "quick" => true,
                "standard" => false,
                other => {
                    return Err(format!(
                        "`budget` must be `quick` or `standard`, got `{other}`"
                    ))
                }
            };
            Ok(ApiCall::Experiment { id, quick })
        }
        _ => Err("unroutable".into()),
    }
}

// ---------------------------------------------------------------------------
// Execution: ApiCall → deterministic JSON response
// ---------------------------------------------------------------------------

/// Executes a call by dispatching into the registry's query layer (or,
/// for experiments, the registry itself). Pure in the call: the same call
/// yields a byte-identical response for any worker count or cache state.
pub fn execute(call: &ApiCall) -> Response {
    let result = match call {
        ApiCall::Library { process } => Query::Library { process: *process }.run(),
        ApiCall::Synth { process, spec } => Query::Synth {
            process: *process,
            spec: spec.clone(),
        }
        .run(),
        ApiCall::Depth { process, stages } => Query::Depth {
            process: *process,
            stages: *stages,
        }
        .run(),
        ApiCall::Width { process, fe, be } => Query::Width {
            process: *process,
            fe: *fe,
            be: *be,
        }
        .run(),
        ApiCall::Ipc {
            spec,
            workload,
            outer,
            instructions,
        } => Query::Ipc {
            spec: spec.clone(),
            workload: *workload,
            outer: *outer,
            instructions: *instructions,
        }
        .run(),
        ApiCall::Experiment { id, quick } => registry::run_one_json(id, *quick),
    };
    match result {
        Ok(body) => Response::json(200, body.encode().into_bytes()),
        Err(msg) => Response::error(500, &msg),
    }
}

/// First-order logic depth (in FO4 units) of the 9-stage baseline's
/// critical stage — the anchor of the analytic brownout model below.
const BASELINE_LOGIC_FO4: f64 = 24.0;
/// Fraction of the issue-width bound a real workload sustains, for the
/// analytic IPC estimate.
const ANALYTIC_IPC_UTILIZATION: f64 = 0.6;

/// The analytic quick path served during queue-pressure brownout: a
/// first-order estimate for the endpoints whose full answer needs
/// synthesis or simulation (`/v1/depth`, `/v1/width`, `/v1/ipc`). Depth
/// and width scale the baseline critical-path logic depth against the
/// characterized kit's FO4 delay and sequencing overhead — no synthesis,
/// no STA; IPC is the width-bound times a sustained-utilization factor —
/// no simulation. Returns `None` for calls with no cheap approximation
/// (library, synth, experiment), which queue as usual even in brownout.
///
/// Bodies are flagged `"degraded": true` (and the server adds an
/// `x-bdc-degraded` header) so a client can never mistake an estimate for
/// a flow answer; they bypass the engine entirely, so a degraded body can
/// never enter the response cache.
pub fn degraded_response(call: &ApiCall) -> Option<Response> {
    let analytic_period = |process: Process, logic_fo4: f64| {
        let kit = bdc_core::process::shared_kit(process);
        let logic = kit.lib.fo4_delay() * logic_fo4;
        let seq = kit.lib.dff.setup + kit.lib.dff.clk_to_q * (1.0 + kit.pipe.skew_fraction);
        logic + seq
    };
    let body = |mut members: Vec<(String, Json)>| {
        let mut all = vec![
            ("degraded".into(), Json::Bool(true)),
            ("model".into(), Json::str("first-order-v1")),
        ];
        all.append(&mut members);
        Some(Response::json(200, Json::Obj(all).encode().into_bytes()))
    };
    match call {
        ApiCall::Depth { process, stages } => {
            // Splitting the baseline into more stages divides its logic
            // depth; sequencing overhead is paid once per stage regardless.
            let period = analytic_period(*process, BASELINE_LOGIC_FO4 * 9.0 / *stages as f64);
            body(vec![
                ("process".into(), Json::str(process.name())),
                ("total_stages".into(), Json::Int(*stages as i64)),
                ("period_s".into(), Json::Num(period)),
                ("frequency_hz".into(), Json::Num(1.0 / period)),
            ])
        }
        ApiCall::Width { process, fe, be } => {
            // Wider machines pay superlinear wiring/mux depth; a small
            // per-lane penalty is the first-order form of that cost.
            let scale = 1.0 + 0.08 * (*fe as f64 - 1.0) + 0.05 * (*be as f64 - 3.0);
            let period = analytic_period(*process, BASELINE_LOGIC_FO4 * scale);
            body(vec![
                ("process".into(), Json::str(process.name())),
                ("fe_width".into(), Json::Int(*fe as i64)),
                ("be_pipes".into(), Json::Int(*be as i64)),
                ("period_s".into(), Json::Num(period)),
                ("frequency_hz".into(), Json::Num(1.0 / period)),
            ])
        }
        ApiCall::Ipc { spec, workload, .. } => {
            let bound = spec.fe_width.min(spec.be_pipes) as f64;
            body(vec![
                ("workload".into(), Json::str(workload.name())),
                ("spec".into(), bdc_core::registry::query::spec_json(spec)),
                ("ipc".into(), Json::Num(bound * ANALYTIC_IPC_UTILIZATION)),
            ])
        }
        ApiCall::Library { .. } | ApiCall::Synth { .. } | ApiCall::Experiment { .. } => None,
    }
}

/// Renders the `/v1/library` body from a kit (thin shim over
/// [`bdc_core::registry::query::library_json`], kept for tests and
/// in-process users).
pub fn library_response(kit: &TechKit) -> Response {
    match bdc_core::registry::query::library_json(kit) {
        Ok(body) => Response::json(200, body.encode().into_bytes()),
        Err(msg) => Response::error(500, &msg),
    }
}

/// Renders a synthesized-core body (thin shim over
/// [`bdc_core::registry::query::synth_json`], kept for tests and
/// in-process users).
pub fn synth_response(kit: &TechKit, spec: &CoreSpec, cuts: &[StageKind]) -> Response {
    let body = bdc_core::registry::query::synth_json(kit, spec, cuts);
    Response::json(200, body.encode().into_bytes())
}

/// The `/v1/experiments` body: the registry catalogue.
pub fn experiments_response() -> Response {
    Response::json(200, registry::catalogue_json().encode().into_bytes())
}

/// The `/healthz` body for the given `ok|degraded|draining` state. The
/// healthy body is byte-pinned to `{"status":"ok"}`; `degraded` still
/// answers 200 (the daemon is serving, just recently recovered from
/// faults), while `draining` answers 503 so load balancers stop routing
/// to a server that is shutting down.
pub fn healthz(status: &str) -> Response {
    let code = if status == "draining" { 503 } else { 200 };
    Response::json(code, format!("{{\"status\":\"{status}\"}}").into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(path_query: &str) -> Request {
        let (path, query) = path_query.split_once('?').unwrap_or((path_query, ""));
        Request {
            method: Method::Get,
            path: path.into(),
            query: query.into(),
            body: Vec::new(),
            keep_alive: true,
            deadline_ms: None,
        }
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: Method::Post,
            path: path.into(),
            query: String::new(),
            body: body.as_bytes().to_vec(),
            keep_alive: true,
            deadline_ms: None,
        }
    }

    fn call(req: &Request) -> ApiCall {
        match route(req) {
            Route::Call(c) => c,
            Route::Error(_, r) => {
                panic!("rejected: {}", String::from_utf8_lossy(&r.body))
            }
            _ => panic!("not a call"),
        }
    }

    #[test]
    fn get_and_post_normalize_to_the_same_call() {
        let a = call(&get(
            "/v1/synth?process=silicon&fe_width=2&be_pipes=4&splits=fetch,issue",
        ));
        let b = call(&post(
            "/v1/synth",
            r#"{"process":"silicon","fe_width":2,"be_pipes":4,"splits":["fetch","issue"]}"#,
        ));
        assert_eq!(a, b);
        assert_eq!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn distinct_calls_have_distinct_keys() {
        let a = call(&get("/v1/width?process=organic&fe=1&be=3"));
        let b = call(&get("/v1/width?process=organic&fe=2&be=3"));
        assert_ne!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn defaults_fill_in() {
        match call(&get("/v1/ipc")) {
            ApiCall::Ipc {
                workload,
                outer,
                instructions,
                spec,
            } => {
                assert_eq!(workload, Workload::Dhrystone);
                assert_eq!(outer, 25);
                assert_eq!(instructions, 12_000);
                assert_eq!(spec, CoreSpec::baseline());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_out_of_range_parameters() {
        for bad in [
            "/v1/width?fe=0",
            "/v1/width?fe=7",
            "/v1/width?be=8",
            "/v1/depth?stages=8",
            "/v1/depth?stages=16",
            "/v1/synth?splits=retire",
            "/v1/synth?splits=nosuch",
            "/v1/ipc?workload=nosuch",
            "/v1/ipc?outer=99999",
            "/v1/library?process=copper",
        ] {
            match route(&get(bad)) {
                Route::Error(_, r) => assert_eq!(r.status, 400, "{bad}"),
                _ => panic!("accepted {bad}"),
            }
        }
    }

    #[test]
    fn unknown_path_is_404() {
        match route(&get("/v2/nope")) {
            Route::Error(e, r) => {
                assert_eq!(r.status, 404);
                assert_eq!(e, Endpoint::Other);
            }
            _ => panic!("routed"),
        }
    }

    #[test]
    fn malformed_post_body_is_400() {
        match route(&post("/v1/synth", "{not json")) {
            Route::Error(_, r) => assert_eq!(r.status, 400),
            _ => panic!("accepted"),
        }
    }

    #[test]
    fn peer_routes_validate_their_address() {
        match route(&get(
            "/v1/peer/artifact?name=lib-organic&key=00000000deadbeef",
        )) {
            Route::PeerFetch { name, key } => {
                assert_eq!(name, "lib-organic");
                assert_eq!(key, 0xdead_beef);
            }
            _ => panic!("valid fetch rejected"),
        }
        let mut store = post("/v1/peer/artifact", "");
        store.query = "name=x&key=0000000000000001".into();
        match route(&store) {
            Route::PeerStore { name, key } => {
                assert_eq!(name, "x");
                assert_eq!(key, 1);
            }
            _ => panic!("valid store rejected"),
        }
        for bad in [
            "/v1/peer/artifact",                                   // missing both
            "/v1/peer/artifact?name=lib",                          // missing key
            "/v1/peer/artifact?key=0000000000000001",              // missing name
            "/v1/peer/artifact?name=lib&key=01",                   // short key
            "/v1/peer/artifact?name=lib&key=000000000000000g",     // non-hex
            "/v1/peer/artifact?name=a/b&key=0000000000000001",     // bad name
            "/v1/peer/artifact?name=lib&key=0000000000000001&x=1", // unknown param
        ] {
            match route(&get(bad)) {
                Route::Error(e, r) => {
                    assert_eq!(r.status, 400, "{bad}");
                    assert_eq!(e, Endpoint::Peer, "{bad}");
                }
                _ => panic!("accepted {bad}"),
            }
        }
    }

    #[test]
    fn peer_store_rejects_unverifiable_frames() {
        let r = peer_store_response("x", 1, b"not a frame");
        assert_eq!(r.status, 400);
        let r = peer_store_response("x", 1, &[0xFF, 0xFE]);
        assert_eq!(r.status, 400);
    }

    #[test]
    fn degraded_quick_path_covers_exactly_the_synthesis_endpoints() {
        // Depth/width/ipc have a first-order estimate; everything else
        // queues as usual even in brownout.
        for (req, expect) in [
            (get("/v1/depth?stages=12"), true),
            (get("/v1/width?fe=2&be=4"), true),
            (get("/v1/ipc?workload=gzip"), true),
            (get("/v1/library"), false),
            (get("/v1/synth?fe_width=2"), false),
        ] {
            let c = call(&req);
            assert_eq!(degraded_response(&c).is_some(), expect, "{:?}", req.path);
        }
        let r = degraded_response(&call(&get("/v1/depth?stages=12"))).unwrap();
        assert_eq!(r.status, 200);
        let parsed = crate::json::parse(std::str::from_utf8(&r.body).unwrap()).unwrap();
        assert_eq!(parsed.get("degraded"), Some(&Json::Bool(true)));
        assert!(parsed.get("frequency_hz").and_then(Json::as_f64).unwrap() > 0.0);
        // Deeper pipelines must estimate faster — the model is monotone.
        let shallow = degraded_response(&call(&get("/v1/depth?stages=9"))).unwrap();
        let sp = crate::json::parse(std::str::from_utf8(&shallow.body).unwrap()).unwrap();
        assert!(
            parsed.get("frequency_hz").and_then(Json::as_f64)
                > sp.get("frequency_hz").and_then(Json::as_f64)
        );
    }

    #[test]
    fn ipc_execution_is_deterministic_and_cached() {
        let c = call(&get("/v1/ipc?workload=gzip&outer=5&instructions=4000"));
        let a = execute(&c);
        let b = execute(&c);
        assert_eq!(a.status, 200);
        assert_eq!(a.body, b.body);
        let parsed = crate::json::parse(std::str::from_utf8(&a.body).unwrap()).unwrap();
        assert!(parsed.get("ipc").and_then(Json::as_f64).unwrap() > 0.0);
    }
}
