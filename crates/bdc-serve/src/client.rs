//! A tiny blocking HTTP/1.1 client for the load generator, the bench
//! harness, and the end-to-end tests. Speaks just enough of the protocol
//! to talk to [`crate::server`]: keep-alive connections, `GET`/`POST`,
//! `Content-Length` bodies.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A response as the client sees it.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Response headers, names lowercased, in wire order.
    pub headers: Vec<(String, String)>,
}

impl ClientResponse {
    /// The first header named `name` (lowercase), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A persistent keep-alive connection to the daemon.
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Connection {
    /// Connects to `addr` (e.g. `127.0.0.1:8731`).
    ///
    /// # Errors
    /// Propagates connect failures.
    pub fn open(addr: &str) -> std::io::Result<Connection> {
        Self::open_with_timeout(addr, Duration::from_secs(120))
    }

    /// Connects with an explicit connect/read deadline. Peer cache fetches
    /// and the cluster router use short timeouts — a slow peer must cost
    /// less than recomputing locally, and a proxied request must fail over
    /// to the next replica quickly.
    ///
    /// # Errors
    /// Propagates connect failures (including the connect timeout).
    pub fn open_with_timeout(addr: &str, timeout: Duration) -> std::io::Result<Connection> {
        // `connect_timeout` needs a resolved SocketAddr; a hostname form
        // (e.g. `localhost:8731`) falls back to plain connect, keeping
        // only the read/write deadlines.
        let stream = match addr.parse::<std::net::SocketAddr>() {
            Ok(parsed) => TcpStream::connect_timeout(&parsed, timeout)?,
            Err(_) => TcpStream::connect(addr)?,
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let writer = stream.try_clone()?;
        Ok(Connection {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Issues a `GET`.
    ///
    /// # Errors
    /// Propagates socket errors (including the server closing mid-reply).
    pub fn get(&mut self, path_query: &str) -> std::io::Result<ClientResponse> {
        let req = format!("GET {path_query} HTTP/1.1\r\nhost: bdc\r\n\r\n");
        self.writer.write_all(req.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Issues a `GET` carrying an `x-bdc-deadline-ms` budget, the entry
    /// point of deadline propagation: the server (or router) subtracts its
    /// own elapsed time before passing the remainder downstream, and
    /// refuses outright (fast 503) when the remainder cannot cover the
    /// work.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn get_with_deadline(
        &mut self,
        path_query: &str,
        deadline_ms: u64,
    ) -> std::io::Result<ClientResponse> {
        let req = format!(
            "GET {path_query} HTTP/1.1\r\nhost: bdc\r\nx-bdc-deadline-ms: {deadline_ms}\r\n\r\n"
        );
        self.writer.write_all(req.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Issues a `POST` with a JSON body.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<ClientResponse> {
        let req = format!(
            "POST {path} HTTP/1.1\r\nhost: bdc\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        self.writer.write_all(req.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Issues a `POST` carrying an `x-bdc-deadline-ms` budget (see
    /// [`Connection::get_with_deadline`]).
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn post_with_deadline(
        &mut self,
        path: &str,
        body: &str,
        deadline_ms: u64,
    ) -> std::io::Result<ClientResponse> {
        let req = format!(
            "POST {path} HTTP/1.1\r\nhost: bdc\r\nx-bdc-deadline-ms: {deadline_ms}\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        self.writer.write_all(req.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let bad =
            |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed connection",
            ));
        }
        let status: u16 = line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut content_length = 0usize;
        let mut headers = Vec::new();
        loop {
            let mut header = String::new();
            if self.reader.read_line(&mut header)? == 0 {
                return Err(bad("truncated header block"));
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| bad("bad content-length"))?;
                }
                headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(ClientResponse {
            status,
            body,
            headers,
        })
    }
}

/// One-shot convenience: open, `GET`, close.
///
/// # Errors
/// Propagates socket errors.
pub fn get_once(addr: &str, path_query: &str) -> std::io::Result<ClientResponse> {
    Connection::open(addr)?.get(path_query)
}

/// One-shot convenience with an `x-bdc-deadline-ms` budget: open, `GET`,
/// close.
///
/// # Errors
/// Propagates socket errors.
pub fn get_once_with_deadline(
    addr: &str,
    path_query: &str,
    deadline_ms: u64,
) -> std::io::Result<ClientResponse> {
    Connection::open(addr)?.get_with_deadline(path_query, deadline_ms)
}

/// Whether a response status is worth retrying: transient server-side
/// states (shed, deadline-expired, contained-fault 500) that a later
/// attempt may well get a cached answer for.
pub fn is_retryable(status: u16) -> bool {
    matches!(status, 429 | 500 | 503 | 504)
}

/// `GET` with up to `retries` re-attempts on socket errors and retryable
/// statuses ([`is_retryable`]), sleeping a seeded, jittered exponential
/// backoff ([`bdc_exec::faults::backoff_delay`]) between attempts so a
/// burst of rejected clients does not retry in lockstep. Each attempt
/// opens a fresh connection — the previous one may be half-dead.
///
/// # Errors
/// The final attempt's socket error, if every attempt errored.
pub fn get_with_retry(
    addr: &str,
    path_query: &str,
    retries: u32,
) -> std::io::Result<ClientResponse> {
    let mut attempt: u32 = 0;
    loop {
        let result = get_once(addr, path_query);
        let retry = match &result {
            Ok(r) => is_retryable(r.status),
            Err(_) => true,
        };
        if !retry || attempt >= retries {
            return result;
        }
        attempt += 1;
        std::thread::sleep(bdc_exec::faults::backoff_delay(
            path_query,
            u64::from(attempt),
        ));
    }
}
