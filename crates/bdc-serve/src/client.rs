//! A tiny blocking HTTP/1.1 client for the load generator, the bench
//! harness, and the end-to-end tests. Speaks just enough of the protocol
//! to talk to [`crate::server`]: keep-alive connections, `GET`/`POST`,
//! `Content-Length` bodies.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A response as the client sees it.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes.
    pub body: Vec<u8>,
}

/// A persistent keep-alive connection to the daemon.
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Connection {
    /// Connects to `addr` (e.g. `127.0.0.1:8731`).
    ///
    /// # Errors
    /// Propagates connect failures.
    pub fn open(addr: &str) -> std::io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        let writer = stream.try_clone()?;
        Ok(Connection {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Issues a `GET`.
    ///
    /// # Errors
    /// Propagates socket errors (including the server closing mid-reply).
    pub fn get(&mut self, path_query: &str) -> std::io::Result<ClientResponse> {
        let req = format!("GET {path_query} HTTP/1.1\r\nhost: bdc\r\n\r\n");
        self.writer.write_all(req.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Issues a `POST` with a JSON body.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<ClientResponse> {
        let req = format!(
            "POST {path} HTTP/1.1\r\nhost: bdc\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        self.writer.write_all(req.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let bad =
            |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed connection",
            ));
        }
        let status: u16 = line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            if self.reader.read_line(&mut header)? == 0 {
                return Err(bad("truncated header block"));
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| bad("bad content-length"))?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(ClientResponse { status, body })
    }
}

/// One-shot convenience: open, `GET`, close.
///
/// # Errors
/// Propagates socket errors.
pub fn get_once(addr: &str, path_query: &str) -> std::io::Result<ClientResponse> {
    Connection::open(addr)?.get(path_query)
}

/// Whether a response status is worth retrying: transient server-side
/// states (shed, deadline-expired, contained-fault 500) that a later
/// attempt may well get a cached answer for.
pub fn is_retryable(status: u16) -> bool {
    matches!(status, 429 | 500 | 503 | 504)
}

/// `GET` with up to `retries` re-attempts on socket errors and retryable
/// statuses ([`is_retryable`]), sleeping a seeded, jittered exponential
/// backoff ([`bdc_exec::faults::backoff_delay`]) between attempts so a
/// burst of rejected clients does not retry in lockstep. Each attempt
/// opens a fresh connection — the previous one may be half-dead.
///
/// # Errors
/// The final attempt's socket error, if every attempt errored.
pub fn get_with_retry(
    addr: &str,
    path_query: &str,
    retries: u32,
) -> std::io::Result<ClientResponse> {
    let mut attempt: u32 = 0;
    loop {
        let result = get_once(addr, path_query);
        let retry = match &result {
            Ok(r) => is_retryable(r.status),
            Err(_) => true,
        };
        if !retry || attempt >= retries {
            return result;
        }
        attempt += 1;
        std::thread::sleep(bdc_exec::faults::backoff_delay(
            path_query,
            u64::from(attempt),
        ));
    }
}
