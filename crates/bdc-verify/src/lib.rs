//! Pass 1 of `bdc verify`: plan-graph analysis over the experiment
//! registry.
//!
//! The registry (`bdc_core::registry::NODES`) is the repo's dataflow
//! graph: 25 nodes, each with declared library dependencies, canonical
//! drivers, and a content address derived from [`node_cache_key`]. Until
//! now its soundness was only checked *dynamically* — `run_plan` rejects
//! key collisions among the nodes actually selected, at the one budget
//! actually used. This crate lifts the catalogue into an explicit static
//! IR ([`PlanIr`]) and proves the properties for every node at every
//! budget, before anything runs:
//!
//! * **PG001** — node ids are unique;
//! * **PG002** — no two `(node, mode)` pairs share a cache key, across the
//!   whole catalogue at both the quick and standard budgets;
//! * **PG003** — every input that reaches a render (`quick` flag,
//!   `SimBudget::outer`, `SimBudget::instructions`) perturbs the node's
//!   key: an under-keyed node would serve stale bytes when that input
//!   changes;
//! * **PG004/PG005** — the driver bipartite graph is sound: every claimed
//!   driver exists in the canonical catalogues, and every canonical driver
//!   is claimed by exactly one node (no orphans, no double claims);
//! * **PG006** — declared library deps match the reads a recording
//!   [`RunCtx`](bdc_core::registry::RunCtx) observes during a fresh
//!   render ([`audit_deps`], the one dynamic cross-validation);
//! * **PG007** — the dependency graph is acyclic ([`find_cycle`] is
//!   generic and unit-tested on synthetic graphs; today's node→library
//!   edges are bipartite, so a cycle would mean registry corruption);
//! * **PG008–PG010** — the fine-grained *stage* graph (device model →
//!   per-cell DC → per-edge NLDM → cell → library → synthesis, plus IPC)
//!   is acyclic, collision-free at every probed parameter point, and
//!   exactly input-sensitive: a device-parameter perturbation must move
//!   precisely the owning stage keys and their downstream cone — organic
//!   stages and organic-dependent experiment nodes — while silicon
//!   stages, IPC, and dependency-free nodes keep their keys
//!   ([`verify_stages`]).
//!
//! Findings flow through `bdc-lint`'s diagnostic machinery
//! ([`LintReport`]), and [`report_json`] renders the IR plus findings as
//! the deterministic `results/verify_report.json` artifact — no
//! timestamps, worker counts, or wall-clock anywhere, so the report is
//! byte-stable across runs and `BDC_WORKERS` settings (golden-tested).

use bdc_core::experiments::SimBudget;
use bdc_core::registry::{audit_node_deps, node_cache_key, node_cache_key_with, Dep, NODES};
use bdc_core::{stage_graph, ParamOverlay, Process};
use bdc_exec::json::Json;
use bdc_lint::{Diagnostic, LintReport, Location, Rule};

/// One registry node, lifted into the static IR.
#[derive(Debug, Clone)]
pub struct IrNode {
    /// Stable node id (`fig12`, `table-library`, …).
    pub id: &'static str,
    /// The legacy binary this node replaced.
    pub legacy_bin: &'static str,
    /// Canonical drivers the node claims.
    pub drivers: Vec<&'static str>,
    /// Declared library dependencies, deduplicated, in `Process` order.
    pub deps: Vec<Process>,
    /// Content address at the quick budget.
    pub key_quick: u64,
    /// Content address at the standard budget.
    pub key_standard: u64,
}

/// The whole catalogue as a static dataflow IR.
#[derive(Debug, Clone)]
pub struct PlanIr {
    /// One entry per registry node, in catalogue order.
    pub nodes: Vec<IrNode>,
}

/// Lifts `NODES` into the IR.
pub fn build_ir() -> PlanIr {
    let quick = SimBudget::quick();
    let standard = SimBudget::standard();
    let nodes = NODES
        .iter()
        .map(|n| {
            let mut deps: Vec<Process> = Vec::new();
            for Dep::Library(p) in n.deps {
                if !deps.contains(p) {
                    deps.push(*p);
                }
            }
            deps.sort_by_key(|p| *p as u8);
            IrNode {
                id: n.id,
                legacy_bin: n.legacy_bin,
                drivers: n.drivers.to_vec(),
                deps,
                key_quick: node_cache_key(n, true, quick),
                key_standard: node_cache_key(n, false, standard),
            }
        })
        .collect();
    PlanIr { nodes }
}

/// Generic cycle detection over a directed graph given as an edge list on
/// vertices `0..n`. Returns one cycle as a vertex path (first == last), or
/// `None` when the graph is acyclic.
pub fn find_cycle(n: usize, edges: &[(usize, usize)]) -> Option<Vec<usize>> {
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in edges {
        if a < n && b < n {
            adj[a].push(b);
        }
    }
    // 0 = unvisited, 1 = on stack, 2 = done.
    let mut state = vec![0u8; n];
    let mut stack: Vec<(usize, usize)> = Vec::new(); // (vertex, next-child index)
    let mut path: Vec<usize> = Vec::new();
    for start in 0..n {
        if state[start] != 0 {
            continue;
        }
        stack.push((start, 0));
        state[start] = 1;
        path.push(start);
        while let Some(&mut (v, ref mut next)) = stack.last_mut() {
            if *next < adj[v].len() {
                let w = adj[v][*next];
                *next += 1;
                match state[w] {
                    0 => {
                        state[w] = 1;
                        stack.push((w, 0));
                        path.push(w);
                    }
                    1 => {
                        // Found: slice the current path from w onward.
                        let at = path.iter().position(|&x| x == w).unwrap_or(0);
                        let mut cycle = path[at..].to_vec();
                        cycle.push(w);
                        return Some(cycle);
                    }
                    _ => {}
                }
            } else {
                state[v] = 2;
                stack.pop();
                path.pop();
            }
        }
    }
    None
}

fn diag(rule: Rule, node: &str, message: String) -> Diagnostic {
    Diagnostic::new(rule, Location::Node(node.to_string()), message)
}

/// The canonical driver catalogue (experiments then extensions).
pub fn canonical_drivers() -> Vec<&'static str> {
    let mut all: Vec<&'static str> = bdc_core::experiments::driver_names().to_vec();
    all.extend_from_slice(bdc_core::extensions::driver_names());
    all
}

/// Runs every static plan-graph check (PG001–PG005, PG007) over the IR.
/// Purely static: nothing is rendered, no library is characterized, no
/// environment is read — safe to run anywhere, byte-stable everywhere.
pub fn verify_static(ir: &PlanIr) -> LintReport {
    let mut report = LintReport::new("plan-graph");

    // PG001: duplicate ids.
    for (i, n) in ir.nodes.iter().enumerate() {
        if ir.nodes[..i].iter().any(|m| m.id == n.id) {
            report.push(diag(
                Rule::DuplicateNodeId,
                n.id,
                format!("node id `{}` registered more than once", n.id),
            ));
        }
    }

    // PG002: global key collisions, across both budgets.
    let mut keys: Vec<(u64, String)> = Vec::new();
    for n in &ir.nodes {
        keys.push((n.key_quick, format!("{} (quick)", n.id)));
        keys.push((n.key_standard, format!("{} (standard)", n.id)));
    }
    keys.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    for pair in keys.windows(2) {
        if pair[0].0 == pair[1].0 {
            report.push(
                diag(
                    Rule::CacheKeyCollision,
                    &pair[1].1,
                    format!(
                        "cache key {:016x} is shared by {} and {}",
                        pair[0].0, pair[0].1, pair[1].1
                    ),
                )
                .with_hint("two nodes must never share a content address"),
            );
        }
    }

    // PG003: key sensitivity — every input that reaches a render fn
    // (`quick`, `budget.outer`, `budget.instructions`) must perturb the
    // key, at both base configurations.
    for (node, ir_node) in NODES.iter().zip(&ir.nodes) {
        for (mode, quick, budget, base) in [
            ("quick", true, SimBudget::quick(), ir_node.key_quick),
            (
                "standard",
                false,
                SimBudget::standard(),
                ir_node.key_standard,
            ),
        ] {
            if node_cache_key(node, quick, budget) != base {
                report.push(diag(
                    Rule::UnderKeyedNode,
                    ir_node.id,
                    format!("cache key is not a pure function of its inputs ({mode})"),
                ));
                continue;
            }
            let perturbed = [
                ("quick flag", node_cache_key(node, !quick, budget)),
                (
                    "budget.outer",
                    node_cache_key(
                        node,
                        quick,
                        SimBudget {
                            outer: budget.outer + 1,
                            ..budget
                        },
                    ),
                ),
                (
                    "budget.instructions",
                    node_cache_key(
                        node,
                        quick,
                        SimBudget {
                            instructions: budget.instructions + 1,
                            ..budget
                        },
                    ),
                ),
            ];
            for (input, key) in perturbed {
                if key == base {
                    report.push(
                        diag(
                            Rule::UnderKeyedNode,
                            ir_node.id,
                            format!(
                                "input `{input}` reaches the render but does not perturb \
                                 the {mode} cache key"
                            ),
                        )
                        .with_hint("add the input to node_cache_key or stale bytes will be served"),
                    );
                }
            }
        }
    }

    // PG004: claimed drivers must exist in the canonical catalogues.
    let canonical = canonical_drivers();
    for n in &ir.nodes {
        for d in &n.drivers {
            if !canonical.contains(d) {
                report.push(diag(
                    Rule::UnknownDriver,
                    n.id,
                    format!("claims driver `{d}` absent from the canonical catalogues"),
                ));
            }
        }
    }

    // PG005: every canonical driver claimed by exactly one node.
    for d in &canonical {
        let owners: Vec<&str> = ir
            .nodes
            .iter()
            .filter(|n| n.drivers.contains(d))
            .map(|n| n.id)
            .collect();
        match owners.len() {
            1 => {}
            0 => report.push(
                diag(
                    Rule::DriverCoverage,
                    &format!("driver:{d}"),
                    format!("canonical driver `{d}` is orphaned — no node claims it"),
                )
                .with_hint("register it on a node or retire the driver"),
            ),
            _ => report.push(diag(
                Rule::DriverCoverage,
                &format!("driver:{d}"),
                format!("canonical driver `{d}` claimed by {owners:?}"),
            )),
        }
    }

    // PG007: dependency cycles. Vertices: nodes then library resources.
    let lib_vertex = |p: Process| ir.nodes.len() + p as usize;
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (i, n) in ir.nodes.iter().enumerate() {
        for p in &n.deps {
            edges.push((i, lib_vertex(*p)));
        }
    }
    if let Some(cycle) = find_cycle(ir.nodes.len() + 2, &edges) {
        let names: Vec<String> = cycle
            .iter()
            .map(|&v| match ir.nodes.get(v) {
                Some(n) => n.id.to_string(),
                None => format!("library#{}", v - ir.nodes.len()),
            })
            .collect();
        report.push(diag(
            Rule::PlanCycle,
            &names.first().cloned().unwrap_or_default(),
            format!("dependency cycle: {}", names.join(" -> ")),
        ));
    }

    report
}

/// Runs the stage-graph checks (PG008–PG010) and returns the number of
/// stages proved plus the findings. Purely static, like
/// [`verify_static`]: keys are derived, never rendered.
///
/// The probe compares the nominal parameter point against a perturbed
/// one (an organic ΔV_T of +0.25 V):
///
/// * **PG008** — the stage graph is acyclic at both points;
/// * **PG009** — the perturbation moves exactly the organic cone: every
///   organic stage key changes, no silicon or IPC stage key changes, and
///   at the experiment level a node re-keys iff it declares the organic
///   library;
/// * **PG010** — no two distinct stages share a content key, within
///   either point or across the two.
pub fn verify_stages() -> (usize, LintReport) {
    let mut report = LintReport::new("stage-graph");
    let nominal = ParamOverlay::default();
    let shifted = ParamOverlay {
        organic_delta_vt: 0.25,
    };
    let base = stage_graph(&nominal);
    let moved = stage_graph(&shifted);

    // PG008: acyclicity (checked at the nominal point; the graph's shape
    // is overlay-independent — only the keys move).
    if let Some(cycle) = find_cycle(base.nodes.len(), &base.edges()) {
        let names: Vec<&str> = cycle
            .iter()
            .filter_map(|&v| base.nodes.get(v).map(|n| n.name.as_str()))
            .collect();
        report.push(diag(
            Rule::StageCycle,
            names.first().copied().unwrap_or("stage"),
            format!("stage dependency cycle: {}", names.join(" -> ")),
        ));
    }

    // PG010: distinct stages never share a key — within either parameter
    // point, or across the two.
    let mut keyed: Vec<(u64, String)> = Vec::new();
    for (tag, graph) in [("nominal", &base), ("shifted", &moved)] {
        for n in &graph.nodes {
            keyed.push((n.key, format!("{} ({tag})", n.name)));
        }
    }
    keyed.sort();
    keyed.dedup();
    for pair in keyed.windows(2) {
        let same_stage = pair[0].1.split(' ').next() == pair[1].1.split(' ').next();
        if pair[0].0 == pair[1].0 && !same_stage {
            report.push(
                diag(
                    Rule::StageKeyCollision,
                    &pair[1].1,
                    format!(
                        "stage key {:016x} is shared by {} and {}",
                        pair[0].0, pair[0].1, pair[1].1
                    ),
                )
                .with_hint("two stages must never share a content address"),
            );
        }
    }

    // PG009, stage level: the organic cone moves, nothing else does.
    for (b, m) in base.nodes.iter().zip(&moved.nodes) {
        debug_assert_eq!(b.name, m.name);
        let organic_cone = b.name.contains("organic");
        if organic_cone && b.key == m.key {
            report.push(
                diag(
                    Rule::StageKeyInsensitive,
                    &b.name,
                    "a device V_T perturbation does not move this organic stage key".into(),
                )
                .with_hint("chain the device stage key into this stage's inputs"),
            );
        }
        if !organic_cone && b.key != m.key {
            report.push(
                diag(
                    Rule::StageKeyInsensitive,
                    &b.name,
                    "a stage outside the perturbed parameter's cone re-keyed".into(),
                )
                .with_hint("over-keying defeats incremental reuse across sweep points"),
            );
        }
    }

    // PG009, experiment level: a node re-keys iff it declares the organic
    // library — the contract `node_cache_key_with` carries for sweeps.
    for (mode, quick, budget) in [
        ("quick", true, SimBudget::quick()),
        ("standard", false, SimBudget::standard()),
    ] {
        for node in NODES {
            let organic_dep = node.deps.contains(&Dep::Library(Process::Organic));
            let unchanged = node_cache_key_with(node, quick, budget, &nominal)
                == node_cache_key_with(node, quick, budget, &shifted);
            if organic_dep && unchanged {
                report.push(diag(
                    Rule::StageKeyInsensitive,
                    node.id,
                    format!(
                        "declares the organic library but its {mode} key ignores a \
                         device V_T perturbation"
                    ),
                ));
            }
            if !organic_dep && !unchanged {
                report.push(
                    diag(
                        Rule::StageKeyInsensitive,
                        node.id,
                        format!(
                            "declares no organic dependency but its {mode} key moved \
                             under a device V_T perturbation"
                        ),
                    )
                    .with_hint("the node would needlessly recompute at every sweep point"),
                );
            }
        }
    }

    (base.nodes.len(), report)
}

/// PG006: cross-validates each node's declared library deps against the
/// reads a recording context observes during a fresh render. Dynamic (it
/// renders every node once, bypassing the artifact cache) — run it at the
/// quick budget in CI. A node whose render itself fails is also reported.
pub fn audit_deps(ir: &PlanIr, quick: bool) -> LintReport {
    let mut report = LintReport::new("dep-audit");
    for n in &ir.nodes {
        match audit_node_deps(n.id, quick) {
            Ok((declared, observed)) => {
                if declared != observed {
                    report.push(
                        diag(
                            Rule::DepMismatch,
                            n.id,
                            format!("declared deps {declared:?} but render read {observed:?}"),
                        )
                        .with_hint("fix the node's `deps` so the scheduler prewarms correctly"),
                    );
                }
            }
            Err(e) => report.push(diag(
                Rule::DepMismatch,
                n.id,
                format!("dependency audit could not render the node: {e}"),
            )),
        }
    }
    report
}

fn location_string(d: &Diagnostic) -> String {
    d.location.to_string()
}

/// Renders the IR plus findings as the deterministic verify-report JSON.
/// `audited` records whether the PG006 dynamic audit ran (and at which
/// budget); `stages` is the stage count [`verify_stages`] proved (0 when
/// the pass did not run). Everything else is static. Contains no timings,
/// seeds, worker counts, or absolute paths — byte-stable across runs by
/// construction.
pub fn report_json(ir: &PlanIr, report: &LintReport, audited: Option<bool>, stages: usize) -> Json {
    let nodes = ir
        .nodes
        .iter()
        .map(|n| {
            Json::Obj(vec![
                ("id".into(), Json::str(n.id)),
                ("legacy_bin".into(), Json::str(n.legacy_bin)),
                (
                    "drivers".into(),
                    Json::Arr(n.drivers.iter().map(|d| Json::str(*d)).collect()),
                ),
                (
                    "deps".into(),
                    Json::Arr(n.deps.iter().map(|p| Json::str(p.name())).collect()),
                ),
                (
                    "key_quick".into(),
                    Json::str(format!("{:016x}", n.key_quick)),
                ),
                (
                    "key_standard".into(),
                    Json::str(format!("{:016x}", n.key_standard)),
                ),
            ])
        })
        .collect();
    let findings = report
        .diagnostics
        .iter()
        .map(|d| {
            Json::Obj(vec![
                ("rule".into(), Json::str(d.rule.id())),
                ("severity".into(), Json::str(d.severity.to_string())),
                ("location".into(), Json::str(location_string(d))),
                ("message".into(), Json::str(&d.message)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("version".into(), Json::str("bdc-verify-v2")),
        ("nodes".into(), Json::Int(ir.nodes.len() as i64)),
        (
            "keys_checked".into(),
            Json::Int((ir.nodes.len() * 2) as i64),
        ),
        ("stages".into(), Json::Int(stages as i64)),
        (
            "dep_audit".into(),
            match audited {
                None => Json::str("skipped"),
                Some(true) => Json::str("quick"),
                Some(false) => Json::str("standard"),
            },
        ),
        ("catalogue".into(), Json::Arr(nodes)),
        ("findings".into(), Json::Arr(findings)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdc_lint::Severity;

    #[test]
    fn ir_covers_the_whole_catalogue() {
        let ir = build_ir();
        assert_eq!(ir.nodes.len(), NODES.len());
        assert!(ir.nodes.iter().any(|n| n.id == "fig12"));
        let fig11 = ir.nodes.iter().find(|n| n.id == "fig11").unwrap();
        assert_eq!(fig11.deps, vec![Process::Organic, Process::Silicon]);
    }

    #[test]
    fn registry_is_statically_sound() {
        // The acceptance gate: all 25 nodes collision-free and fully keyed.
        let ir = build_ir();
        let report = verify_static(&ir);
        assert!(report.diagnostics.is_empty(), "{report}");
        assert_eq!(report.count(Severity::Error), 0);
    }

    #[test]
    fn key_collisions_are_detected() {
        // A synthetic IR with two identical keys must trip PG002.
        let mut ir = build_ir();
        ir.nodes[1].key_quick = ir.nodes[0].key_quick;
        let mut keys: Vec<(u64, String)> = Vec::new();
        for n in &ir.nodes {
            keys.push((n.key_quick, n.id.into()));
        }
        keys.sort();
        assert!(keys.windows(2).any(|w| w[0].0 == w[1].0));
        // verify_static recomputes PG003 from NODES but PG002 from the IR.
        let report = verify_static(&ir);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.rule == Rule::CacheKeyCollision),
            "{report}"
        );
    }

    #[test]
    fn find_cycle_detects_and_clears() {
        assert!(find_cycle(3, &[(0, 1), (1, 2)]).is_none());
        let cycle = find_cycle(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]).expect("cycle");
        assert_eq!(cycle.first(), cycle.last());
        assert!(cycle.len() >= 3);
        // Self-loop.
        assert!(find_cycle(1, &[(0, 0)]).is_some());
        // Out-of-range edges are ignored, not a panic.
        assert!(find_cycle(2, &[(0, 7), (9, 1)]).is_none());
    }

    #[test]
    fn report_json_is_deterministic_and_timeless() {
        let ir = build_ir();
        let report = verify_static(&ir);
        let a = report_json(&ir, &report, None, 47).encode();
        let b = report_json(&ir, &report, None, 47).encode();
        assert_eq!(a, b);
        for forbidden in ["wall", "workers", "time", "seed"] {
            assert!(!a.contains(forbidden), "report leaks `{forbidden}`");
        }
        assert!(a.contains("bdc-verify-v2"));
        assert!(a.contains("key_quick"));
        assert!(a.contains("\"stages\":47"));
    }

    #[test]
    fn stage_graph_is_statically_sound() {
        // The acceptance gate for the fine-grained cache: acyclic,
        // collision-free, and exactly input-sensitive.
        let (stages, report) = verify_stages();
        assert!(report.diagnostics.is_empty(), "{report}");
        // 2 processes × (1 device + 5×4 cell stages + lib + synth) + ipc.
        assert_eq!(stages, 47);
    }

    #[test]
    fn stage_insensitivity_is_detected_on_a_synthetic_graph() {
        // verify_stages derives keys from the real stage module, so a
        // healthy repo cannot trip PG009 — exercise the classifier
        // directly: an organic stage whose key ignores the perturbation
        // must be flagged by the same cone predicate the pass uses.
        let nominal = stage_graph(&ParamOverlay::default());
        let shifted = stage_graph(&ParamOverlay {
            organic_delta_vt: 0.25,
        });
        let lib_nom = nominal.node("lib-organic").expect("lib stage").key;
        let lib_shift = shifted.node("lib-organic").expect("lib stage").key;
        assert_ne!(lib_nom, lib_shift, "organic cone must move");
        let ipc_nom = nominal.node("ipc").expect("ipc stage").key;
        let ipc_shift = shifted.node("ipc").expect("ipc stage").key;
        assert_eq!(ipc_nom, ipc_shift, "ipc must stay outside the cone");
    }
}
