//! Sharded multi-process serving for the biodegradable-computing stack.
//!
//! A `bdc-cluster` fleet is N independent `bdc_serve` worker processes —
//! each with its own engine, response cache, and artifact cache — behind
//! one shard router. Three mechanisms hold it together:
//!
//! * **The ring** ([`bdc_exec::cluster`], re-exported here as
//!   [`cluster`]): a seeded consistent-hash ring with virtual nodes maps
//!   every experiment cache key and artifact address to an owning shard.
//!   Router and workers build the identical ring from
//!   (`shards`, `ring_seed`, `vnodes`), so "who owns what" is a pure
//!   function the whole fleet agrees on with zero coordination traffic.
//! * **The router** ([`router`]): proxies each request to the slot owner,
//!   fails over along the ring on transport errors and retryable statuses
//!   with seeded backoff, answers deterministic-body routes locally, and
//!   aggregates fleet-wide `/healthz` and `/v1/metrics`.
//! * **The supervisor** ([`supervisor`]): spawns workers with their
//!   cluster identity in the environment, restarts crashes with seeded
//!   backoff, and drains the fleet on shutdown.
//!
//! Workers cross-fill artifact caches over the peer protocol
//! (`/v1/peer/artifact`, `bdc-artifact-v1` framing with checksum verify
//! and quarantine-on-corruption) — a shard that misses locally asks the
//! ring owner before recomputing.
//!
//! The invariant that makes all of this safe: every response body is
//! byte-deterministic, so any shard — or the router itself — renders the
//! same bytes for the same request. Failover and resharding change
//! latency, never content.

pub mod breaker;
pub mod cli;
pub mod router;
pub mod supervisor;

/// The shared ring/topology types (re-export of [`bdc_exec::cluster`]).
pub use bdc_exec::cluster;

pub use breaker::{Breaker, BreakerConfig, BreakerDecision, BreakerSnapshot};
pub use cli::{parse_cluster_args, run_cluster, ClusterArgs};
pub use router::{start_router, RouterConfig, RouterHandle, RouterMetrics};
pub use supervisor::{start_supervisor, Supervisor, SupervisorConfig};
