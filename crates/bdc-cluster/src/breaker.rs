//! Per-shard circuit breakers for the router's failover path.
//!
//! Each shard gets one [`Breaker`] tracking a rolling window of proxy
//! attempt outcomes (transport errors, retryable statuses, and attempts
//! slower than the configured latency ceiling all count as failures).
//! When the failure fraction over a full-enough window crosses the
//! threshold the breaker **opens**: the router stops offering that shard
//! requests and routes straight to the next ring replica, so a dying
//! shard stops eating a connect timeout per request. After a bounded
//! number of bypassed routing decisions the breaker **half-opens** and
//! lets exactly one live request through as a probe; a successful probe
//! closes the breaker (window cleared — the shard starts fresh), a failed
//! one reopens it.
//!
//! The state machine is driven entirely by request outcomes and decision
//! counts — no wall-clock cool-down — so a chaos run replays the same
//! open/probe/close sequence for the same request sequence. A breaker
//! that never sees a failure never leaves `closed` and never perturbs
//! routing: the zero-fault byte-determinism gate holds.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Breaker tuning knobs (shared by every shard's breaker).
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Rolling outcome-window length.
    pub window: usize,
    /// Open when `failures / window_len >= failure_threshold` (with at
    /// least `min_samples` outcomes recorded).
    pub failure_threshold: f64,
    /// Outcomes required before the breaker may open — a single cold-start
    /// failure must not blacklist a shard.
    pub min_samples: usize,
    /// Bypassed routing decisions while open before the breaker half-opens
    /// and admits a probe request.
    pub probe_after: u64,
    /// Attempt latency (ms) counted as a failure even when the response
    /// itself was fine — a shard answering at crawl speed is as routed
    /// around as a dead one.
    pub slow_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 16,
            failure_threshold: 0.5,
            min_samples: 8,
            probe_after: 8,
            slow_ms: 30_000,
        }
    }
}

/// What the router should do with a candidate shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Closed: route normally.
    Allow,
    /// Half-open: admit this one request as the probe.
    Probe,
    /// Open (or a probe is already in flight): skip to the next replica.
    Skip,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Closed,
    /// `bypassed` counts routing decisions skipped since opening.
    Open {
        bypassed: u64,
    },
    /// One probe request is in flight; its outcome decides.
    HalfOpen,
}

#[derive(Debug)]
struct Inner {
    state: State,
    /// Rolling outcomes, `true` = failure, newest at the back.
    window: VecDeque<bool>,
    /// Rolling attempt latencies (ms), parallel to `window`.
    latencies: VecDeque<u64>,
    /// Times this breaker has opened (monotone, for observability).
    opened_total: u64,
}

/// One shard's circuit breaker.
#[derive(Debug)]
pub struct Breaker {
    cfg: BreakerConfig,
    inner: Mutex<Inner>,
}

/// An observability snapshot of one breaker.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerSnapshot {
    /// `closed` | `open` | `half-open`.
    pub state: &'static str,
    /// Failure fraction over the current window (0 when empty).
    pub failure_rate: f64,
    /// Mean attempt latency (ms) over the current window.
    pub mean_ms: f64,
    /// Times this breaker has opened since boot.
    pub opened_total: u64,
}

impl Breaker {
    /// A closed breaker with the given knobs.
    pub fn new(cfg: BreakerConfig) -> Breaker {
        Breaker {
            cfg,
            inner: Mutex::new(Inner {
                state: State::Closed,
                window: VecDeque::new(),
                latencies: VecDeque::new(),
                opened_total: 0,
            }),
        }
    }

    /// One routing decision for this shard. Closed breakers always allow
    /// and mutate nothing, so the no-fault path is untouched.
    pub fn decide(&self) -> BreakerDecision {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        match inner.state {
            State::Closed => BreakerDecision::Allow,
            State::HalfOpen => BreakerDecision::Skip,
            State::Open { bypassed } => {
                if bypassed + 1 >= self.cfg.probe_after {
                    inner.state = State::HalfOpen;
                    BreakerDecision::Probe
                } else {
                    inner.state = State::Open {
                        bypassed: bypassed + 1,
                    };
                    BreakerDecision::Skip
                }
            }
        }
    }

    /// Records the outcome of an attempt admitted by [`Breaker::decide`].
    /// `failed` covers transport errors and retryable statuses; an attempt
    /// slower than the latency ceiling counts as failed regardless.
    /// Returns `true` when this outcome transitioned the breaker
    /// (closed → open, or resolved a probe).
    pub fn record(&self, was_probe: bool, failed: bool, elapsed_ms: u64) -> bool {
        let failed = failed || elapsed_ms > self.cfg.slow_ms;
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if was_probe {
            // Resolve the half-open probe. (If the breaker was somehow
            // re-closed meanwhile, the outcome just joins the window.)
            if inner.state == State::HalfOpen {
                if failed {
                    inner.state = State::Open { bypassed: 0 };
                    inner.opened_total += 1;
                } else {
                    inner.state = State::Closed;
                    inner.window.clear();
                    inner.latencies.clear();
                }
                return true;
            }
        }
        inner.window.push_back(failed);
        inner.latencies.push_back(elapsed_ms);
        while inner.window.len() > self.cfg.window {
            inner.window.pop_front();
            inner.latencies.pop_front();
        }
        if inner.state == State::Closed && inner.window.len() >= self.cfg.min_samples {
            let failures = inner.window.iter().filter(|f| **f).count();
            if failures as f64 / inner.window.len() as f64 >= self.cfg.failure_threshold {
                inner.state = State::Open { bypassed: 0 };
                inner.opened_total += 1;
                return true;
            }
        }
        false
    }

    /// Whether the breaker is currently routing around its shard.
    pub fn is_open(&self) -> bool {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        !matches!(inner.state, State::Closed)
    }

    /// The observability snapshot for `/v1/metrics`.
    pub fn snapshot(&self) -> BreakerSnapshot {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let n = inner.window.len();
        let failure_rate = if n == 0 {
            0.0
        } else {
            inner.window.iter().filter(|f| **f).count() as f64 / n as f64
        };
        let mean_ms = if n == 0 {
            0.0
        } else {
            inner.latencies.iter().sum::<u64>() as f64 / n as f64
        };
        BreakerSnapshot {
            state: match inner.state {
                State::Closed => "closed",
                State::Open { .. } => "open",
                State::HalfOpen => "half-open",
            },
            failure_rate,
            mean_ms,
            opened_total: inner.opened_total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> Breaker {
        Breaker::new(BreakerConfig {
            window: 8,
            failure_threshold: 0.5,
            min_samples: 4,
            probe_after: 3,
            slow_ms: 1_000,
        })
    }

    #[test]
    fn closed_breaker_always_allows_and_stays_inert() {
        let b = breaker();
        for _ in 0..100 {
            assert_eq!(b.decide(), BreakerDecision::Allow);
        }
        // Healthy traffic never opens it.
        for _ in 0..100 {
            assert!(!b.record(false, false, 5));
        }
        assert!(!b.is_open());
        assert_eq!(b.snapshot().state, "closed");
        assert_eq!(b.snapshot().opened_total, 0);
    }

    #[test]
    fn sustained_failures_open_then_probe_then_close() {
        let b = breaker();
        // Three failures: below min_samples, still closed.
        for _ in 0..3 {
            assert!(!b.record(false, true, 5));
        }
        assert!(!b.is_open());
        // The fourth crosses min_samples at 100% failure → open.
        assert!(b.record(false, true, 5));
        assert!(b.is_open());
        assert_eq!(b.snapshot().state, "open");
        // probe_after = 3: two skips, then the third decision probes.
        assert_eq!(b.decide(), BreakerDecision::Skip);
        assert_eq!(b.decide(), BreakerDecision::Skip);
        assert_eq!(b.decide(), BreakerDecision::Probe);
        // While the probe is in flight, everything else skips.
        assert_eq!(b.decide(), BreakerDecision::Skip);
        assert_eq!(b.snapshot().state, "half-open");
        // Probe succeeds → closed with a fresh window.
        assert!(b.record(true, false, 5));
        assert!(!b.is_open());
        assert_eq!(b.decide(), BreakerDecision::Allow);
        assert_eq!(b.snapshot().failure_rate, 0.0);
    }

    #[test]
    fn failed_probe_reopens() {
        let b = breaker();
        for _ in 0..4 {
            b.record(false, true, 5);
        }
        while b.decide() != BreakerDecision::Probe {}
        assert!(b.record(true, true, 5));
        assert_eq!(b.snapshot().state, "open");
        assert_eq!(b.snapshot().opened_total, 2);
        // And it earns another probe after the bypass budget again.
        assert_eq!(b.decide(), BreakerDecision::Skip);
        assert_eq!(b.decide(), BreakerDecision::Skip);
        assert_eq!(b.decide(), BreakerDecision::Probe);
    }

    #[test]
    fn slow_attempts_count_as_failures() {
        let b = breaker();
        // 200 OK but slower than the 1 s ceiling, four times → open.
        for _ in 0..3 {
            assert!(!b.record(false, false, 5_000));
        }
        assert!(b.record(false, false, 5_000));
        assert!(b.is_open());
    }

    #[test]
    fn mixed_window_respects_the_threshold() {
        let b = breaker();
        // 2 failures in 8 outcomes = 25% < 50%: stays closed at every
        // point of the window's growth.
        for i in 0..8 {
            assert!(!b.record(false, i % 4 == 0, 5));
        }
        assert!(!b.is_open());
        let snap = b.snapshot();
        assert!((snap.failure_rate - 2.0 / 8.0).abs() < 1e-12);
        assert!(snap.mean_ms > 0.0);
    }
}
