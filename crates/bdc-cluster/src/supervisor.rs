//! The worker supervisor: spawns N `bdc_serve` shard processes, restarts
//! crashed ones with seeded backoff, and tears the fleet down cleanly.
//!
//! Each worker is launched with its full cluster identity in the
//! environment (`BDC_SHARDS`, `BDC_RING_SEED`, `BDC_SHARD_ID`,
//! `BDC_PEER_PORTS`) plus a *per-shard* artifact cache root
//! (`BDC_CACHE_DIR=<cache-root>/shard-N`) — disjoint caches are what make
//! the peer-fetch path observable: a shard that did not compute an
//! artifact genuinely does not have it on disk.
//!
//! **Restart policy:** a worker that exits while the fleet is up is
//! relaunched after a seeded, jittered exponential backoff
//! ([`bdc_exec::faults::backoff_delay`] — deterministic for a given
//! shard/attempt, so chaos runs reproduce). The attempt counter resets
//! once a worker survives [`STABLE_UPTIME`], so a long-lived shard that
//! eventually crashes restarts fast, while a crash-looping one backs off.
//!
//! **Teardown:** SIGTERM to every worker (the daemon's graceful-drain
//! path), a bounded wait, then SIGKILL for stragglers.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bdc_exec::faults;

/// Uptime after which a worker's restart-attempt counter resets.
const STABLE_UPTIME: Duration = Duration::from_secs(30);

/// How long teardown waits for a SIGTERMed worker before SIGKILL.
const DRAIN_WAIT: Duration = Duration::from_secs(10);

/// Monitor poll interval.
const POLL: Duration = Duration::from_millis(200);

/// Fleet launch parameters.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Number of shard workers.
    pub shards: usize,
    /// First worker port; shard `i` listens on `base_port + i`.
    pub base_port: u16,
    /// The fleet's ring seed (must match the router's).
    pub ring_seed: u64,
    /// Path to the `bdc_serve` binary.
    pub serve_bin: PathBuf,
    /// Root under which each shard gets its own cache directory.
    pub cache_root: PathBuf,
    /// Extra argv passed through to every worker (`--queue-cap`, …).
    pub passthrough: Vec<String>,
    /// Where the fleet pid file is written (`results/cluster_pids.json`);
    /// empty disables it.
    pub pid_file: PathBuf,
}

/// One supervised worker slot.
struct Slot {
    shard: usize,
    child: Option<Child>,
    // bdc-lint: allow(D002, restart-policy uptime tracking, not artifact bytes)
    started: Instant,
    attempt: u64,
}

/// A running fleet of supervised workers.
pub struct Supervisor {
    cfg: SupervisorConfig,
    slots: Arc<Mutex<Vec<Slot>>>,
    stop: Arc<AtomicBool>,
    monitor: Option<std::thread::JoinHandle<()>>,
}

/// The loopback address shard `i` listens on.
pub fn shard_addr(cfg: &SupervisorConfig, shard: usize) -> String {
    format!("127.0.0.1:{}", cfg.base_port + shard as u16)
}

/// Spawns the fleet and its monitor thread.
///
/// # Errors
/// Propagates spawn failures for the initial launch (a worker that later
/// crashes is restarted, not propagated).
pub fn start_supervisor(cfg: SupervisorConfig) -> std::io::Result<Supervisor> {
    check_stale_pid_file(&cfg.pid_file)?;
    let mut slots = Vec::with_capacity(cfg.shards);
    for shard in 0..cfg.shards {
        let child = spawn_worker(&cfg, shard)?;
        slots.push(Slot {
            shard,
            child: Some(child),
            // bdc-lint: allow(D002, restart-policy uptime tracking, not artifact bytes)
            started: Instant::now(),
            attempt: 0,
        });
    }
    let slots = Arc::new(Mutex::new(slots));
    let stop = Arc::new(AtomicBool::new(false));
    write_pid_file(&cfg, &slots.lock().unwrap_or_else(|p| p.into_inner()));

    let monitor = {
        let cfg = cfg.clone();
        let slots = Arc::clone(&slots);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("bdc-cluster-monitor".into())
            .spawn(move || monitor_loop(&cfg, &slots, &stop))?
    };
    Ok(Supervisor {
        cfg,
        slots,
        stop,
        monitor: Some(monitor),
    })
}

/// Launches one shard worker with its identity environment.
fn spawn_worker(cfg: &SupervisorConfig, shard: usize) -> std::io::Result<Child> {
    let ports: Vec<String> = (0..cfg.shards)
        .map(|i| (cfg.base_port + i as u16).to_string())
        .collect();
    let cache_dir = cfg.cache_root.join(format!("shard-{shard}"));
    Command::new(&cfg.serve_bin)
        .arg("--addr")
        .arg(shard_addr(cfg, shard))
        .args(&cfg.passthrough)
        .env("BDC_SHARDS", cfg.shards.to_string())
        .env("BDC_RING_SEED", cfg.ring_seed.to_string())
        .env("BDC_SHARD_ID", shard.to_string())
        .env("BDC_PEER_PORTS", ports.join(","))
        .env("BDC_CACHE_DIR", &cache_dir)
        .stdin(Stdio::null())
        .spawn()
}

/// The monitor: restart crashed workers with seeded backoff until the
/// fleet is stopped.
fn monitor_loop(cfg: &SupervisorConfig, slots: &Mutex<Vec<Slot>>, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        std::thread::sleep(POLL);
        let mut restarted = false;
        {
            let mut guard = slots.lock().unwrap_or_else(|p| p.into_inner());
            for slot in guard.iter_mut() {
                let exited = match &mut slot.child {
                    Some(child) => matches!(child.try_wait(), Ok(Some(_)) | Err(_)),
                    None => true,
                };
                if !exited {
                    if slot.attempt > 0 && slot.started.elapsed() >= STABLE_UPTIME {
                        slot.attempt = 0;
                    }
                    continue;
                }
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                slot.child = None;
                slot.attempt += 1;
                let delay = faults::backoff_delay(&format!("shard-{}", slot.shard), slot.attempt);
                eprintln!(
                    "bdc-cluster: shard {} exited; restart attempt {} in {:?}",
                    slot.shard, slot.attempt, delay
                );
                std::thread::sleep(delay);
                match spawn_worker(cfg, slot.shard) {
                    Ok(child) => {
                        slot.child = Some(child);
                        // bdc-lint: allow(D002, restart-policy uptime tracking, not artifact bytes)
                        slot.started = Instant::now();
                        restarted = true;
                    }
                    Err(e) => {
                        eprintln!("bdc-cluster: shard {} respawn failed: {e}", slot.shard);
                    }
                }
            }
            if restarted {
                write_pid_file(cfg, &guard);
            }
        }
    }
}

/// Inspects an existing fleet pid file before launch. A pid file whose
/// every recorded pid is dead — or recycled by the kernel to a non-`bdc`
/// process — is stale debris from a crashed or SIGKILLed supervisor and
/// is replaced silently; one that still names a live `bdc` worker means
/// another fleet owns these ports, and launching over it would double-bind
/// and corrupt per-shard caches.
///
/// # Errors
/// `AddrInUse` when the pid file names a live `bdc` process.
fn check_stale_pid_file(pid_file: &std::path::Path) -> std::io::Result<()> {
    if pid_file.as_os_str().is_empty() || !pid_file.exists() {
        return Ok(());
    }
    let pids = match std::fs::read_to_string(pid_file)
        .ok()
        .and_then(|raw| bdc_serve::json::parse(&raw).ok())
    {
        Some(doc) => match doc.get("workers") {
            Some(bdc_serve::json::Json::Arr(rows)) => rows
                .iter()
                .filter_map(|row| row.get("pid").and_then(bdc_serve::json::Json::as_u64))
                .collect::<Vec<u64>>(),
            // Parseable JSON without a workers array: not ours, replace.
            _ => Vec::new(),
        },
        // Unparseable debris (e.g. a torn write): replace.
        None => Vec::new(),
    };
    for pid in pids {
        if let Some(cmd) = live_process_command(pid) {
            if cmd.contains("bdc") {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::AddrInUse,
                    format!(
                        "pid file {} names live bdc worker pid {pid} ({cmd}); \
                         is another fleet running?",
                        pid_file.display()
                    ),
                ));
            }
            eprintln!(
                "bdc-cluster: pid file {} entry {pid} was recycled by `{cmd}`; treating as stale",
                pid_file.display()
            );
        }
    }
    eprintln!(
        "bdc-cluster: replacing stale pid file {} (no live bdc worker)",
        pid_file.display()
    );
    Ok(())
}

/// The command name (`/proc/<pid>/cmdline` argv[0] file stem) of a live
/// process, or `None` when the pid is dead. On platforms without procfs
/// every pid reads as dead, so a stale file is always replaced — the
/// conservative failure mode for a best-effort observability file.
fn live_process_command(pid: u64) -> Option<String> {
    let raw = std::fs::read(format!("/proc/{pid}/cmdline")).ok()?;
    let argv0 = raw.split(|b| *b == 0).next().unwrap_or(&[]);
    let argv0 = String::from_utf8_lossy(argv0);
    let stem = std::path::Path::new(argv0.as_ref())
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| argv0.into_owned());
    if stem.is_empty() {
        // A zombie or kernel thread with an empty cmdline cannot be a
        // worker holding our ports.
        return None;
    }
    Some(stem)
}

/// Rewrites the fleet pid file (best effort — observability, not a lock).
fn write_pid_file(cfg: &SupervisorConfig, slots: &[Slot]) {
    if cfg.pid_file.as_os_str().is_empty() {
        return;
    }
    use bdc_serve::json::Json;
    let rows = slots
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("shard".into(), Json::Int(s.shard as i64)),
                (
                    "port".into(),
                    Json::Int(i64::from(cfg.base_port) + s.shard as i64),
                ),
                (
                    "pid".into(),
                    match &s.child {
                        Some(c) => Json::Int(i64::from(c.id())),
                        None => Json::Null,
                    },
                ),
            ])
        })
        .collect();
    let body = Json::Obj(vec![
        ("shards".into(), Json::Int(cfg.shards as i64)),
        ("ring_seed".into(), Json::Int(cfg.ring_seed as i64)),
        ("workers".into(), Json::Arr(rows)),
    ]);
    if let Some(dir) = cfg.pid_file.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let _ = std::fs::write(&cfg.pid_file, body.encode() + "\n");
}

/// Sends a signal to a pid (unix only; no-op elsewhere).
#[cfg(unix)]
fn send_signal(pid: u32, sig: i32) {
    // Mirrors the one unsafe precedent in `bdc_serve::install_signal_handlers`:
    // libc signalling has no safe std equivalent, and `kill(2)` with a
    // pid we spawned is memory-safe by construction.
    #[allow(unsafe_code)]
    {
        extern "C" {
            fn kill(pid: i32, sig: i32) -> i32;
        }
        unsafe {
            kill(pid as i32, sig);
        }
    }
}

#[cfg(not(unix))]
fn send_signal(_pid: u32, _sig: i32) {}

impl Supervisor {
    /// Every worker's loopback address, in shard order.
    pub fn shard_addrs(&self) -> Vec<String> {
        (0..self.cfg.shards)
            .map(|i| shard_addr(&self.cfg, i))
            .collect()
    }

    /// Current pids, in shard order (`None` for a slot mid-restart).
    pub fn pids(&self) -> Vec<Option<u32>> {
        let guard = self.slots.lock().unwrap_or_else(|p| p.into_inner());
        guard
            .iter()
            .map(|s| s.child.as_ref().map(Child::id))
            .collect()
    }

    /// Polls every shard's `/healthz` until all answer or the deadline
    /// expires; returns whether the fleet came up.
    pub fn wait_ready(&self, timeout: Duration) -> bool {
        // bdc-lint: allow(D002, boot-deadline tracking, not artifact bytes)
        let t0 = Instant::now();
        let addrs = self.shard_addrs();
        loop {
            let ready = addrs
                .iter()
                .filter(|addr| {
                    bdc_serve::client::Connection::open_with_timeout(
                        addr,
                        Duration::from_millis(500),
                    )
                    .and_then(|mut c| c.get("/healthz"))
                    .map(|r| r.status == 200)
                    .unwrap_or(false)
                })
                .count();
            if ready == addrs.len() {
                return true;
            }
            if t0.elapsed() > timeout {
                return false;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
    }

    /// Graceful teardown: SIGTERM every worker (triggering the daemon's
    /// drain path), wait up to [`DRAIN_WAIT`], then SIGKILL stragglers.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(monitor) = self.monitor.take() {
            let _ = monitor.join();
        }
        let mut guard = self.slots.lock().unwrap_or_else(|p| p.into_inner());
        for slot in guard.iter() {
            if let Some(child) = &slot.child {
                send_signal(child.id(), 15); // SIGTERM
            }
        }
        // bdc-lint: allow(D002, drain-deadline tracking, not artifact bytes)
        let t0 = Instant::now();
        for slot in guard.iter_mut() {
            let Some(child) = &mut slot.child else {
                continue;
            };
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if t0.elapsed() < DRAIN_WAIT => {
                        std::thread::sleep(Duration::from_millis(50))
                    }
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                }
            }
            slot.child = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid_file(label: &str, pids: &[u64]) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bdc-pidfile-{label}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let rows: Vec<String> = pids
            .iter()
            .enumerate()
            .map(|(i, pid)| format!("{{\"shard\":{i},\"port\":0,\"pid\":{pid}}}"))
            .collect();
        let path = dir.join("cluster_pids.json");
        std::fs::write(
            &path,
            format!(
                "{{\"shards\":{},\"workers\":[{}]}}\n",
                pids.len(),
                rows.join(",")
            ),
        )
        .unwrap();
        path
    }

    #[test]
    fn absent_or_empty_pid_file_is_fine() {
        assert!(check_stale_pid_file(std::path::Path::new("")).is_ok());
        assert!(check_stale_pid_file(std::path::Path::new("/nonexistent/pids.json")).is_ok());
    }

    #[test]
    fn dead_pids_make_the_file_stale() {
        // Far beyond any kernel's pid_max: guaranteed dead.
        let path = pid_file("dead", &[999_999_999]);
        assert!(check_stale_pid_file(&path).is_ok());
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn recycled_pid_on_a_non_bdc_process_is_stale() {
        // A live process that is definitely not a bdc worker.
        let mut child = Command::new("sleep")
            .arg("5")
            .stdin(Stdio::null())
            .spawn()
            .expect("spawn sleep");
        let path = pid_file("recycled", &[u64::from(child.id())]);
        assert!(check_stale_pid_file(&path).is_ok());
        let _ = child.kill();
        let _ = child.wait();
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn live_bdc_pid_refuses_to_launch_over_it() {
        // This very test binary is named `bdc_cluster-<hash>` — a live
        // process whose command contains "bdc", exactly what a stolen
        // port set would look like.
        let path = pid_file("live", &[u64::from(std::process::id())]);
        let err = check_stale_pid_file(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
        assert!(err.to_string().contains("another fleet"), "{err}");
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn garbage_pid_file_is_stale_not_fatal() {
        let dir = std::env::temp_dir().join(format!("bdc-pidfile-garbage-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cluster_pids.json");
        std::fs::write(&path, "{torn wri").unwrap();
        assert!(check_stale_pid_file(&path).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
