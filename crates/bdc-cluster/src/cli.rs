//! The `bdc cluster` entry point: boot a supervised shard fleet behind
//! the router and serve until signalled.
//!
//! ```text
//! bdc cluster [--shards N] [--addr HOST:PORT] [--base-port P]
//!             [--ring-seed S] [--vnodes V] [--proxy-retries R]
//!             [--serve-bin PATH] [--cache-root DIR] [--pid-file PATH]
//!             [--queue-cap N] [--deadline-ms MS] [--max-retries N] [--warm]
//! ```
//!
//! The last row of flags is passed through verbatim to every worker, so a
//! fleet can be tuned exactly like a single `bdc_serve` daemon. Flag
//! errors exit with status 2 (matching the `BDC_FAULTS` validation
//! discipline); runtime failures exit 1.

use std::path::PathBuf;
use std::time::Duration;

use crate::router::{start_router, RouterConfig};
use crate::supervisor::{start_supervisor, SupervisorConfig};

/// Parsed `bdc cluster` flags.
#[derive(Debug, Clone)]
pub struct ClusterArgs {
    /// Worker count (1..=[`bdc_exec::cluster::MAX_SHARDS`]).
    pub shards: usize,
    /// Router bind address.
    pub addr: String,
    /// First worker port.
    pub base_port: u16,
    /// Fleet ring seed.
    pub ring_seed: u64,
    /// Virtual nodes per shard.
    pub vnodes: usize,
    /// Router failover budget.
    pub proxy_retries: u32,
    /// Worker binary; `None` means "sibling `bdc_serve` of this binary".
    pub serve_bin: Option<PathBuf>,
    /// Per-shard cache directories live under here.
    pub cache_root: PathBuf,
    /// Fleet pid file.
    pub pid_file: PathBuf,
    /// Flags forwarded verbatim to every worker.
    pub passthrough: Vec<String>,
}

impl Default for ClusterArgs {
    fn default() -> Self {
        ClusterArgs {
            shards: 3,
            addr: "127.0.0.1:8800".into(),
            base_port: 8810,
            ring_seed: 42,
            vnodes: bdc_exec::cluster::DEFAULT_VNODES,
            proxy_retries: 3,
            serve_bin: None,
            cache_root: PathBuf::from("results/cluster"),
            pid_file: PathBuf::from("results/cluster_pids.json"),
            passthrough: Vec::new(),
        }
    }
}

/// Parses `bdc cluster` argv (everything after the subcommand).
///
/// # Errors
/// Returns a message naming the offending flag; callers should print it
/// and exit 2.
pub fn parse_cluster_args(args: &[String]) -> Result<ClusterArgs, String> {
    let mut out = ClusterArgs::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--shards" => {
                let v = value("--shards")?;
                out.shards = v
                    .parse::<usize>()
                    .ok()
                    .filter(|n| (1..=bdc_exec::cluster::MAX_SHARDS).contains(n))
                    .ok_or_else(|| {
                        format!(
                            "--shards must be 1..={} (got {v:?})",
                            bdc_exec::cluster::MAX_SHARDS
                        )
                    })?;
            }
            "--addr" => out.addr = value("--addr")?,
            "--base-port" => {
                let v = value("--base-port")?;
                out.base_port = v
                    .parse::<u16>()
                    .ok()
                    .filter(|p| *p != 0)
                    .ok_or_else(|| format!("--base-port must be a nonzero port (got {v:?})"))?;
            }
            "--ring-seed" => {
                let v = value("--ring-seed")?;
                out.ring_seed = v
                    .parse::<u64>()
                    .map_err(|_| format!("--ring-seed must be a u64 (got {v:?})"))?;
            }
            "--vnodes" => {
                let v = value("--vnodes")?;
                out.vnodes = v
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("--vnodes must be >= 1 (got {v:?})"))?;
            }
            "--proxy-retries" => {
                let v = value("--proxy-retries")?;
                out.proxy_retries = v
                    .parse::<u32>()
                    .map_err(|_| format!("--proxy-retries must be a u32 (got {v:?})"))?;
            }
            "--serve-bin" => out.serve_bin = Some(PathBuf::from(value("--serve-bin")?)),
            "--cache-root" => out.cache_root = PathBuf::from(value("--cache-root")?),
            "--pid-file" => out.pid_file = PathBuf::from(value("--pid-file")?),
            "--warm" => out.passthrough.push("--warm".into()),
            "--queue-cap" | "--deadline-ms" | "--max-retries" => {
                let v = value(flag)?;
                out.passthrough.push(flag.clone());
                out.passthrough.push(v);
            }
            other => return Err(format!("unknown flag {other:?} (see `bdc cluster --help`)")),
        }
    }
    // Port-range sanity: workers occupy base_port..base_port+shards.
    if usize::from(out.base_port) + out.shards > usize::from(u16::MAX) {
        return Err(format!(
            "--base-port {} + --shards {} overflows the port range",
            out.base_port, out.shards
        ));
    }
    Ok(out)
}

/// Resolves the worker binary: explicit flag, else the `bdc_serve`
/// sibling of the running executable.
fn resolve_serve_bin(args: &ClusterArgs) -> Result<PathBuf, String> {
    if let Some(bin) = &args.serve_bin {
        return Ok(bin.clone());
    }
    let me = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    let sibling = me.with_file_name("bdc_serve");
    if sibling.is_file() {
        Ok(sibling)
    } else {
        Err(format!(
            "no bdc_serve next to {} — pass --serve-bin",
            me.display()
        ))
    }
}

/// Runs the fleet until `stop()` reports true (typically
/// [`bdc_serve::signalled`] wired to SIGTERM/SIGINT). Returns a process
/// exit code.
pub fn run_cluster(args: &ClusterArgs, stop: &dyn Fn() -> bool) -> i32 {
    let serve_bin = match resolve_serve_bin(args) {
        Ok(bin) => bin,
        Err(e) => {
            eprintln!("bdc cluster: {e}");
            return 2;
        }
    };
    let sup_cfg = SupervisorConfig {
        shards: args.shards,
        base_port: args.base_port,
        ring_seed: args.ring_seed,
        serve_bin,
        cache_root: args.cache_root.clone(),
        passthrough: args.passthrough.clone(),
        pid_file: args.pid_file.clone(),
    };
    let supervisor = match start_supervisor(sup_cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bdc cluster: worker spawn failed: {e}");
            return 1;
        }
    };
    if !supervisor.wait_ready(Duration::from_secs(30)) {
        eprintln!("bdc cluster: fleet did not become healthy within 30s");
        supervisor.shutdown();
        return 1;
    }
    let router_cfg = RouterConfig {
        addr: args.addr.clone(),
        shard_addrs: supervisor.shard_addrs(),
        ring_seed: args.ring_seed,
        vnodes: args.vnodes,
        proxy_retries: args.proxy_retries,
        ..RouterConfig::default()
    };
    let router = match start_router(router_cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bdc cluster: router bind failed: {e}");
            supervisor.shutdown();
            return 1;
        }
    };
    println!(
        "bdc cluster: {} shards on ports {}..={} behind {} (ring seed {}); pid file {}",
        args.shards,
        args.base_port,
        args.base_port + args.shards as u16 - 1,
        args.addr,
        args.ring_seed,
        args.pid_file.display()
    );
    while !stop() {
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("bdc cluster: draining");
    router.shutdown();
    supervisor.shutdown();
    println!("bdc cluster: done");
    0
}
