//! The shard router: one front door for an N-shard `bdc_serve` fleet.
//!
//! Every request is routed by the same seeded consistent-hash ring the
//! shards build their peer-fetch topology from ([`bdc_exec::cluster`]):
//! a computational call's slot is derived from its canonical cache key, so
//! the same query always lands on the same shard (maximizing that shard's
//! response-cache and coalescing hit rates), and a peer artifact transfer
//! lands on the artifact's ring owner. Static and invalid requests are
//! answered locally — the bodies are deterministic, so a router-rendered
//! 404 is byte-identical to a shard-rendered one.
//!
//! **Failover:** a proxied request that dies in transport or comes back
//! retryable (429/500/503/504) is re-sent to the next distinct shard in
//! ring order ([`Ring::replicas`]) after a seeded backoff, up to a bounded
//! number of attempts; only when every attempt is spent does the client
//! see a `502`. Because any shard serves byte-identical bodies, failover
//! is invisible except for the `x-bdc-shard` header.
//!
//! **Circuit breakers:** each shard carries a [`Breaker`] over a rolling
//! window of attempt outcomes and latencies. An open breaker takes its
//! shard out of the replica walk entirely (no connect timeout paid), then
//! half-opens after a bounded number of bypasses to admit a live probe
//! request; the probe's outcome closes or reopens it. Closed breakers are
//! byte-inert — the zero-fault determinism gate routes exactly as before.
//!
//! **Deadline propagation:** a request carrying `x-bdc-deadline-ms` has
//! the router's own elapsed time subtracted before each attempt, the
//! remainder forwarded downstream (the shard refuses work the remainder
//! cannot cover), and its failover loop stops the moment the budget runs
//! out — a fast 503 instead of a doomed slow retry chain.
//!
//! **Fleet observability:** the router answers `/healthz` with per-shard
//! `ok|degraded|draining|down` states, `/v1/metrics` with its own proxy
//! counters plus every shard's snapshot and a fleet-wide sum, and
//! `/v1/cluster` with the ring topology.

use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bdc_exec::cluster::{artifact_slot, key_slot, Ring};
use bdc_exec::faults;
use bdc_serve::api::{self, Route};
use bdc_serve::client::{self, Connection};
use bdc_serve::json::{self, Json};
use bdc_serve::{http, Response};

use crate::breaker::{Breaker, BreakerConfig, BreakerDecision};

/// Per-attempt connect/read deadline for proxied requests. Generous
/// enough for a cold characterization on the shard (seconds), small
/// enough that a dead shard fails over quickly on connect.
const PROXY_TIMEOUT: Duration = Duration::from_secs(60);

/// Short deadline for the fan-out aggregation calls (`/healthz`,
/// `/v1/metrics`): a down shard must not stall the fleet view.
const PROBE_TIMEOUT: Duration = Duration::from_secs(2);

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address (port 0 picks an ephemeral port).
    pub addr: String,
    /// One backend address per shard, in shard-id order.
    pub shard_addrs: Vec<String>,
    /// Ring seed — must match the fleet's `BDC_RING_SEED`.
    pub ring_seed: u64,
    /// Virtual nodes per shard.
    pub vnodes: usize,
    /// Extra proxy attempts after the first (failover budget).
    pub proxy_retries: u32,
    /// Connection-worker threads.
    pub conn_threads: usize,
    /// Accepted sockets that may wait for a worker before shedding.
    pub conn_backlog: usize,
    /// Per-shard circuit-breaker knobs.
    pub breaker: BreakerConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            shard_addrs: Vec::new(),
            ring_seed: 0,
            vnodes: bdc_exec::cluster::DEFAULT_VNODES,
            proxy_retries: 3,
            conn_threads: 8,
            conn_backlog: 64,
            breaker: BreakerConfig::default(),
        }
    }
}

/// The router's own counters (shard counters live on the shards).
#[derive(Debug, Default)]
pub struct RouterMetrics {
    /// Requests proxied to a shard (excludes locally answered ones).
    pub proxied: AtomicU64,
    /// Attempts that failed over to another replica.
    pub failovers: AtomicU64,
    /// Requests whose whole failover budget was spent (answered 502).
    pub exhausted: AtomicU64,
    /// Requests answered by the router itself (health, metrics,
    /// topology, validation errors).
    pub local: AtomicU64,
    /// Connections shed at accept time.
    pub shed: AtomicU64,
    /// Attempts skipped because the candidate shard's breaker was open.
    pub breaker_skips: AtomicU64,
    /// Probe requests admitted by a half-open breaker.
    pub breaker_probes: AtomicU64,
    /// Times any shard's breaker opened (including reopens).
    pub breaker_opened: AtomicU64,
    /// Requests whose propagated deadline budget ran out inside the
    /// router (answered 503 without further failover).
    pub deadline_exhausted: AtomicU64,
}

struct Shared {
    cfg: RouterConfig,
    ring: Ring,
    metrics: RouterMetrics,
    /// One breaker per shard, indexed like `cfg.shard_addrs`.
    breakers: Vec<Breaker>,
}

/// A running router.
pub struct RouterHandle {
    port: u16,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// The router's proxy counters.
    pub fn metrics(&self) -> &RouterMetrics {
        &self.shared.metrics
    }

    /// Graceful shutdown: stop accepting, finish in-flight requests, join
    /// every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Binds the router and spawns its acceptor + connection workers.
///
/// # Errors
/// Propagates bind failures; rejects an empty shard list.
pub fn start_router(cfg: RouterConfig) -> std::io::Result<RouterHandle> {
    if cfg.shard_addrs.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "router needs at least one shard address",
        ));
    }
    let listener = TcpListener::bind(&cfg.addr)?;
    let port = listener.local_addr()?.port();
    listener.set_nonblocking(true)?;

    let ring = Ring::new(cfg.shard_addrs.len(), cfg.vnodes, cfg.ring_seed);
    let breakers = (0..cfg.shard_addrs.len())
        .map(|_| Breaker::new(cfg.breaker.clone()))
        .collect();
    let shared = Arc::new(Shared {
        cfg,
        ring,
        metrics: RouterMetrics::default(),
        breakers,
    });
    let stop = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::new();

    let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(shared.cfg.conn_backlog);
    let rx = Arc::new(Mutex::new(rx));
    for i in 0..shared.cfg.conn_threads.max(1) {
        let rx = Arc::clone(&rx);
        let shared = Arc::clone(&shared);
        let stop = Arc::clone(&stop);
        threads.push(
            std::thread::Builder::new()
                .name(format!("bdc-router-conn-{i}"))
                .spawn(move || conn_worker(&rx, &shared, &stop))?,
        );
    }
    {
        let shared = Arc::clone(&shared);
        let stop = Arc::clone(&stop);
        threads.push(
            std::thread::Builder::new()
                .name("bdc-router-accept".into())
                .spawn(move || acceptor(&listener, &tx, &shared, &stop))?,
        );
    }

    Ok(RouterHandle {
        port,
        shared,
        stop,
        threads,
    })
}

fn acceptor(
    listener: &TcpListener,
    tx: &SyncSender<TcpStream>,
    shared: &Shared,
    stop: &AtomicBool,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => match tx.try_send(stream) {
                Ok(()) => {}
                Err(TrySendError::Full(mut stream)) => {
                    shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                    let mut resp = Response::error(429, "router saturated; retry");
                    resp.extra_headers.push(("retry-after".into(), "1".into()));
                    let _ = resp.write_to(&mut stream, false);
                }
                Err(TrySendError::Disconnected(_)) => return,
            },
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn conn_worker(rx: &Mutex<Receiver<TcpStream>>, shared: &Shared, stop: &AtomicBool) {
    loop {
        let stream = {
            let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
            guard.recv_timeout(Duration::from_millis(100))
        };
        match stream {
            Ok(stream) => serve_connection(stream, shared, stop),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn serve_connection(stream: TcpStream, shared: &Shared, stop: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let request = match http::read_request(&mut reader) {
            Ok(r) => r,
            Err(e) => {
                let status = e.status();
                if status != 0 {
                    let _ = Response::error(status, &format!("{e:?}")).write_to(&mut writer, false);
                }
                return;
            }
        };
        let keep_alive = request.keep_alive && !stop.load(Ordering::SeqCst);
        let response = handle(&request, shared);
        if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

/// Routes one request: answered locally (health, metrics, topology,
/// validation errors) or proxied to a shard chosen by the ring with
/// bounded failover.
fn handle(request: &http::Request, shared: &Shared) -> Response {
    // `/v1/cluster` exists only on the router (shards know their own id,
    // not the fleet), so it is matched before the shared route table.
    if request.path == "/v1/cluster" {
        shared.metrics.local.fetch_add(1, Ordering::Relaxed);
        return topology(shared);
    }
    match api::route(request) {
        Route::Healthz => {
            shared.metrics.local.fetch_add(1, Ordering::Relaxed);
            healthz(shared)
        }
        Route::Metrics => {
            shared.metrics.local.fetch_add(1, Ordering::Relaxed);
            metrics(shared)
        }
        // The catalogue is static and identical on every shard; answering
        // locally keeps it off the proxy path entirely.
        Route::Experiments => {
            shared.metrics.local.fetch_add(1, Ordering::Relaxed);
            api::experiments_response()
        }
        // Validation failures render deterministically — a router-rendered
        // 400/404 is byte-identical to a shard-rendered one.
        Route::Error(_, response) => {
            shared.metrics.local.fetch_add(1, Ordering::Relaxed);
            response
        }
        Route::Call(call) => proxy(request, shared, key_slot(call.cache_key())),
        Route::PeerFetch { name, key } | Route::PeerStore { name, key } => {
            proxy(request, shared, artifact_slot(&name, key))
        }
    }
}

/// Proxies a request to the slot's owner, failing over along the replica
/// order with seeded backoff until the per-request attempt budget — or
/// the request's propagated deadline budget — is spent. Candidate shards
/// whose circuit breaker is open are skipped (the breaker's half-open
/// probe admits one live request through); when every candidate's breaker
/// is open the nominal owner is tried anyway — fail-static beats failing
/// closed on a fully-tripped fleet.
fn proxy(request: &http::Request, shared: &Shared, slot: u64) -> Response {
    let body = match std::str::from_utf8(&request.body) {
        Ok(b) => b,
        Err(_) => return Response::error(400, "body is not utf-8"),
    };
    let path_query = if request.query.is_empty() {
        request.path.clone()
    } else {
        format!("{}?{}", request.path, request.query)
    };
    shared.metrics.proxied.fetch_add(1, Ordering::Relaxed);
    // bdc-lint: allow(D002, deadline-budget tracking, not artifact bytes)
    let t0 = Instant::now();
    let replicas = shared.ring.replicas(slot);
    let attempts = shared.cfg.proxy_retries as usize + 1;
    let mut last_status = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            shared.metrics.failovers.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(faults::backoff_delay(&path_query, attempt as u64));
        }
        // Deadline subtraction: each attempt sees what is left of the
        // client's budget after the router's own elapsed time. An empty
        // remainder ends the failover loop — a fast 503 beats burning
        // replicas on a request nobody is waiting for anymore.
        let remaining_ms = request
            .deadline_ms
            .map(|ms| ms.saturating_sub(t0.elapsed().as_millis() as u64));
        if remaining_ms == Some(0) {
            shared
                .metrics
                .deadline_exhausted
                .fetch_add(1, Ordering::Relaxed);
            let mut r = Response::error(503, "deadline budget exhausted in router");
            r.extra_headers
                .push(("x-bdc-deadline-refused".into(), "1".into()));
            return r;
        }
        // Breaker walk: the first candidate (in ring order from this
        // attempt) whose breaker admits the request.
        let mut shard = replicas[attempt % replicas.len()];
        let mut decision = shared.breakers[shard].decide();
        if decision == BreakerDecision::Skip {
            shared.metrics.breaker_skips.fetch_add(1, Ordering::Relaxed);
            for step in 1..replicas.len() {
                let candidate = replicas[(attempt + step) % replicas.len()];
                match shared.breakers[candidate].decide() {
                    BreakerDecision::Skip => {
                        shared.metrics.breaker_skips.fetch_add(1, Ordering::Relaxed);
                    }
                    admitted => {
                        shard = candidate;
                        decision = admitted;
                        break;
                    }
                }
            }
            // Every breaker open: fall through with the nominal candidate.
        }
        if decision == BreakerDecision::Probe {
            shared
                .metrics
                .breaker_probes
                .fetch_add(1, Ordering::Relaxed);
        }
        let addr = &shared.cfg.shard_addrs[shard];
        // An injected partition severs this attempt before any bytes move
        // — the seeded roll heals across attempts, so failover recovers.
        let partitioned = faults::inject_partition(&path_query, attempt as u64);
        // bdc-lint: allow(D002, breaker latency telemetry, not artifact bytes)
        let attempt_start = Instant::now();
        let result = if partitioned {
            Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "injected partition",
            ))
        } else {
            let timeout = match remaining_ms {
                Some(ms) => PROXY_TIMEOUT.min(Duration::from_millis(ms)),
                None => PROXY_TIMEOUT,
            };
            Connection::open_with_timeout(addr, timeout).and_then(|mut c| {
                match (request.method, remaining_ms) {
                    (http::Method::Get, None) => c.get(&path_query),
                    (http::Method::Get, Some(ms)) => c.get_with_deadline(&path_query, ms),
                    (http::Method::Post, None) => c.post(&path_query, body),
                    (http::Method::Post, Some(ms)) => c.post_with_deadline(&path_query, body, ms),
                }
            })
        };
        let failed = match &result {
            Ok(r) => client::is_retryable(r.status),
            Err(_) => true,
        };
        let elapsed_ms = attempt_start.elapsed().as_millis() as u64;
        let transitioned =
            shared.breakers[shard].record(decision == BreakerDecision::Probe, failed, elapsed_ms);
        if transitioned && shared.breakers[shard].is_open() {
            shared
                .metrics
                .breaker_opened
                .fetch_add(1, Ordering::Relaxed);
        }
        match result {
            Ok(r) if !failed => {
                let mut resp = Response::json(r.status, r.body);
                resp.extra_headers
                    .push(("x-bdc-shard".into(), shard.to_string()));
                return resp;
            }
            Ok(r) => last_status = Some(r.status),
            Err(_) => {}
        }
    }
    shared.metrics.exhausted.fetch_add(1, Ordering::Relaxed);
    let detail = match last_status {
        Some(s) => format!("all replicas failed (last status {s})"),
        None => "all replicas unreachable".to_string(),
    };
    Response::error(502, &detail)
}

/// One aggregation probe: `GET path` on a shard with a short deadline.
fn probe(addr: &str, path: &str) -> Option<client::ClientResponse> {
    Connection::open_with_timeout(addr, PROBE_TIMEOUT)
        .and_then(|mut c| c.get(path))
        .ok()
}

/// The fleet `/healthz`: per-shard `ok|degraded|draining|down` plus an
/// overall state — `ok` when every shard is ok, `down` (503) when no
/// shard answers, `degraded` otherwise.
fn healthz(shared: &Shared) -> Response {
    let mut states = Vec::with_capacity(shared.cfg.shard_addrs.len());
    for addr in &shared.cfg.shard_addrs {
        let state = match probe(addr, "/healthz") {
            Some(r) => json::parse(&String::from_utf8_lossy(&r.body))
                .ok()
                .and_then(|j| j.get("status").and_then(|s| s.as_str().map(String::from)))
                .unwrap_or_else(|| "down".to_string()),
            None => "down".to_string(),
        };
        states.push(state);
    }
    let up = states.iter().filter(|s| s.as_str() != "down").count();
    let overall = if up == 0 {
        "down"
    } else if states.iter().all(|s| s == "ok") {
        "ok"
    } else {
        "degraded"
    };
    let body = Json::Obj(vec![
        ("status".into(), Json::str(overall)),
        (
            "shards".into(),
            Json::Arr(
                states
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        Json::Obj(vec![
                            ("shard".into(), Json::Int(i as i64)),
                            ("status".into(), Json::str(s.as_str())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let code = if up == 0 { 503 } else { 200 };
    Response::json(code, body.encode().into_bytes())
}

/// Fields summed across shards into the fleet view: per-endpoint request
/// outcomes from `endpoints.*`, cache effectiveness from `engine.*`, and
/// the survival counters from `faults.*`.
const FLEET_ENGINE_FIELDS: [&str; 3] = ["cache_hits", "coalesced", "queue_shed"];
const FLEET_FAULT_FIELDS: [&str; 5] = [
    "quarantined",
    "rebuilt",
    "peer_hits",
    "peer_misses",
    "peer_pushes",
];
const FLEET_ENDPOINT_FIELDS: [&str; 4] = ["requests", "ok", "shed", "server_error"];

/// The fleet `/v1/metrics`: the router's own proxy counters, every
/// shard's full snapshot (or `null` for a down shard), and a fleet-wide
/// sum of the cross-shard counters.
fn metrics(shared: &Shared) -> Response {
    let m = &shared.metrics;
    let load = |a: &AtomicU64| Json::Int(a.load(Ordering::Relaxed) as i64);
    let mut shard_snaps = Vec::with_capacity(shared.cfg.shard_addrs.len());
    for addr in &shared.cfg.shard_addrs {
        let snap = probe(addr, "/v1/metrics")
            .and_then(|r| json::parse(&String::from_utf8_lossy(&r.body)).ok());
        shard_snaps.push(snap);
    }

    let mut fleet: Vec<(String, i64)> = Vec::new();
    let mut add = |key: &str, v: u64| match fleet.iter_mut().find(|(k, _)| k == key) {
        Some((_, total)) => *total += v as i64,
        None => fleet.push((key.to_string(), v as i64)),
    };
    for snap in shard_snaps.iter().flatten() {
        for field in FLEET_ENDPOINT_FIELDS {
            let mut total = 0;
            if let Some(Json::Obj(endpoints)) = snap.get("endpoints") {
                for (_, stats) in endpoints {
                    total += stats.get(field).and_then(Json::as_u64).unwrap_or(0);
                }
            }
            add(field, total);
        }
        for field in FLEET_ENGINE_FIELDS {
            let v = snap
                .get("engine")
                .and_then(|e| e.get(field))
                .and_then(Json::as_u64)
                .unwrap_or(0);
            add(field, v);
        }
        for field in FLEET_FAULT_FIELDS {
            let v = snap
                .get("faults")
                .and_then(|f| f.get(field))
                .and_then(Json::as_u64)
                .unwrap_or(0);
            add(field, v);
        }
    }

    let body = Json::Obj(vec![
        (
            "router".into(),
            Json::Obj(vec![
                ("proxied".into(), load(&m.proxied)),
                ("failovers".into(), load(&m.failovers)),
                ("exhausted".into(), load(&m.exhausted)),
                ("local".into(), load(&m.local)),
                ("shed".into(), load(&m.shed)),
                ("breaker_skips".into(), load(&m.breaker_skips)),
                ("breaker_probes".into(), load(&m.breaker_probes)),
                ("breaker_opened".into(), load(&m.breaker_opened)),
                ("deadline_exhausted".into(), load(&m.deadline_exhausted)),
                (
                    "shards".into(),
                    Json::Int(shared.cfg.shard_addrs.len() as i64),
                ),
                (
                    "breakers".into(),
                    Json::Arr(
                        shared
                            .breakers
                            .iter()
                            .enumerate()
                            .map(|(i, b)| {
                                let snap = b.snapshot();
                                Json::Obj(vec![
                                    ("shard".into(), Json::Int(i as i64)),
                                    ("state".into(), Json::str(snap.state)),
                                    ("failure_rate".into(), Json::Num(snap.failure_rate)),
                                    ("mean_ms".into(), Json::Num(snap.mean_ms)),
                                    ("opened_total".into(), Json::Int(snap.opened_total as i64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "shards".into(),
            Json::Arr(
                shard_snaps
                    .into_iter()
                    .enumerate()
                    .map(|(i, snap)| {
                        Json::Obj(vec![
                            ("shard".into(), Json::Int(i as i64)),
                            ("up".into(), Json::Bool(snap.is_some())),
                            ("metrics".into(), snap.unwrap_or(Json::Null)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "fleet".into(),
            Json::Obj(fleet.into_iter().map(|(k, v)| (k, Json::Int(v))).collect()),
        ),
    ]);
    Response::json(200, body.encode().into_bytes())
}

/// The `/v1/cluster` topology body: fleet shape plus each member's
/// address, so tools can discover shards through the router.
fn topology(shared: &Shared) -> Response {
    let body = Json::Obj(vec![
        (
            "shards".into(),
            Json::Int(shared.cfg.shard_addrs.len() as i64),
        ),
        ("ring_seed".into(), Json::Int(shared.cfg.ring_seed as i64)),
        ("vnodes".into(), Json::Int(shared.cfg.vnodes as i64)),
        (
            "members".into(),
            Json::Arr(
                shared
                    .cfg
                    .shard_addrs
                    .iter()
                    .enumerate()
                    .map(|(i, addr)| {
                        Json::Obj(vec![
                            ("shard".into(), Json::Int(i as i64)),
                            ("addr".into(), Json::str(addr.as_str())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    Response::json(200, body.encode().into_bytes())
}
