//! Cluster integration tests: a real 3-shard in-process fleet behind the
//! real router, driven over TCP.
//!
//! The load-bearing claims: any shard (or the router) serves bodies
//! byte-identical to a standalone single-process server; a dead shard is
//! hidden by failover (no client-visible 5xx); the router's fleet views
//! aggregate per-shard state; and the peer artifact protocol round-trips
//! through the router to the ring owner.

use bdc_cluster::cluster::{artifact_slot, Ring};
use bdc_cluster::router::{start_router, RouterConfig};
use bdc_serve::client::Connection;
use bdc_serve::json::{self, Json};
use bdc_serve::{EngineConfig, ServeConfig};

const RING_SEED: u64 = 42;
const VNODES: usize = 64;

/// Boots `n` in-process shard servers and a router over them. Returns
/// (shard handles, shard addrs, router handle, router addr).
fn boot_fleet(
    n: usize,
) -> (
    Vec<bdc_serve::ServerHandle>,
    Vec<String>,
    bdc_cluster::RouterHandle,
    String,
) {
    let mut handles = Vec::new();
    let mut addrs = Vec::new();
    for shard in 0..n {
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".into(),
            conn_threads: 4,
            engine: EngineConfig {
                queue_cap: 16,
                max_batch: 8,
                ..EngineConfig::default()
            },
            shard: Some(shard),
            ..ServeConfig::default()
        };
        let handle = bdc_serve::start(cfg).expect("bind shard");
        addrs.push(format!("127.0.0.1:{}", handle.port()));
        handles.push(handle);
    }
    let router = start_router(RouterConfig {
        addr: "127.0.0.1:0".into(),
        shard_addrs: addrs.clone(),
        ring_seed: RING_SEED,
        vnodes: VNODES,
        proxy_retries: 3,
        ..RouterConfig::default()
    })
    .expect("bind router");
    let router_addr = format!("127.0.0.1:{}", router.port());
    (handles, addrs, router, router_addr)
}

fn boot_standalone() -> (bdc_serve::ServerHandle, String) {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        conn_threads: 4,
        engine: EngineConfig {
            queue_cap: 16,
            max_batch: 8,
            ..EngineConfig::default()
        },
        ..ServeConfig::default()
    };
    let handle = bdc_serve::start(cfg).expect("bind standalone");
    let addr = format!("127.0.0.1:{}", handle.port());
    (handle, addr)
}

fn body_json(body: &[u8]) -> Json {
    json::parse(std::str::from_utf8(body).expect("utf-8 body")).expect("json body")
}

/// The request mix: compute endpoints, the static catalogue, a validation
/// error, and a 404 — every body must be identical no matter who renders
/// it.
const PATHS: [&str; 5] = [
    "/v1/experiments",
    "/v1/library?process=silicon",
    "/v1/ipc?workload=gzip&outer=5&instructions=4000",
    "/v1/width?fe=99",
    "/v2/nope",
];

#[test]
fn any_shard_and_the_router_serve_byte_identical_bodies() {
    let (handles, addrs, router, router_addr) = boot_fleet(3);
    let (standalone, standalone_addr) = boot_standalone();

    for path in PATHS {
        let reference = Connection::open(&standalone_addr)
            .expect("connect standalone")
            .get(path)
            .expect("standalone get");
        assert!(
            reference.header("x-bdc-shard").is_none(),
            "standalone must not claim a shard id"
        );

        let via_router = Connection::open(&router_addr)
            .expect("connect router")
            .get(path)
            .expect("router get");
        assert_eq!(via_router.status, reference.status, "{path}");
        assert_eq!(via_router.body, reference.body, "router body for {path}");

        for (shard, addr) in addrs.iter().enumerate() {
            let direct = Connection::open(addr)
                .expect("connect shard")
                .get(path)
                .expect("direct get");
            assert_eq!(direct.status, reference.status, "{path} via shard {shard}");
            assert_eq!(direct.body, reference.body, "{path} via shard {shard}");
            assert_eq!(
                direct.header("x-bdc-shard"),
                Some(shard.to_string().as_str()),
                "direct response must carry its shard id"
            );
        }
    }

    // Proxied routes carry the answering shard's id, and a healthy fleet
    // never fails over — so the claimed shard is the slot owner.
    let mut conn = Connection::open(&router_addr).expect("connect router");
    let r = conn
        .get("/v1/ipc?workload=gzip&outer=5&instructions=4000")
        .expect("proxied get");
    let claimed: usize = r
        .header("x-bdc-shard")
        .expect("proxied response carries x-bdc-shard")
        .parse()
        .expect("numeric shard id");
    assert!(claimed < 3);
    let metrics = body_json(&conn.get("/v1/metrics").expect("metrics").body);
    assert_eq!(
        metrics
            .get("router")
            .and_then(|r| r.get("failovers"))
            .and_then(Json::as_u64),
        Some(0),
        "healthy fleet must not fail over"
    );

    router.shutdown();
    standalone.shutdown();
    for h in handles {
        h.shutdown();
    }
}

#[test]
fn failover_hides_a_dead_shard_and_the_fleet_views_report_it() {
    let (mut handles, _addrs, router, router_addr) = boot_fleet(3);

    // Healthy fleet: overall ok, 3 shards ok, topology visible.
    let mut conn = Connection::open(&router_addr).expect("connect router");
    let health = body_json(&conn.get("/healthz").expect("healthz").body);
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));

    let topo = body_json(&conn.get("/v1/cluster").expect("topology").body);
    assert_eq!(topo.get("shards").and_then(Json::as_u64), Some(3));
    assert_eq!(
        topo.get("members")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(3)
    );

    // Kill the shard that owns a proxied compute route, so at least one
    // of the requests below must fail over. The owner is discovered from
    // the healthy fleet's shard header rather than hard-coded — the key
    // layout (and therefore slot ownership) may legitimately change when
    // the response-cache salt does.
    let owner: usize = conn
        .get("/v1/ipc?workload=gzip&outer=5&instructions=4000")
        .expect("proxied get")
        .header("x-bdc-shard")
        .expect("proxied response carries x-bdc-shard")
        .parse()
        .expect("numeric shard id");
    handles.remove(owner).shutdown();

    // Every request must still succeed — the router fails over to a
    // surviving replica and the client never sees a 5xx.
    for round in 0..3 {
        for path in PATHS {
            let r = Connection::open(&router_addr)
                .expect("connect router")
                .get(path)
                .expect("get after kill");
            assert!(
                r.status < 500,
                "round {round}: {path} surfaced {} after shard kill",
                r.status
            );
        }
    }

    // The kill is visible in the fleet views even though clients are
    // insulated from it.
    let mut conn = Connection::open(&router_addr).expect("reconnect router");
    let health = body_json(&conn.get("/healthz").expect("healthz").body);
    assert_eq!(
        health.get("status").and_then(Json::as_str),
        Some("degraded")
    );
    let down = match health.get("shards") {
        Some(Json::Arr(rows)) => rows
            .iter()
            .filter(|r| r.get("status").and_then(Json::as_str) == Some("down"))
            .count(),
        _ => 0,
    };
    assert_eq!(down, 1, "exactly one shard is down: {health:?}");

    let metrics = body_json(&conn.get("/v1/metrics").expect("metrics").body);
    let router_section = metrics.get("router").expect("router section");
    assert_eq!(router_section.get("shards").and_then(Json::as_u64), Some(3));
    assert!(
        router_section
            .get("failovers")
            .and_then(Json::as_u64)
            .expect("failovers counter")
            > 0,
        "requests owned by the dead shard must have failed over"
    );
    assert_eq!(
        router_section.get("exhausted").and_then(Json::as_u64),
        Some(0),
        "no request may exhaust its failover budget with 2 shards alive"
    );
    let ups = match metrics.get("shards") {
        Some(Json::Arr(rows)) => rows
            .iter()
            .filter(|r| r.get("up") == Some(&Json::Bool(true)))
            .count(),
        _ => 0,
    };
    assert_eq!(ups, 2, "metrics must report exactly two shards up");
    assert!(
        metrics
            .get("fleet")
            .and_then(|f| f.get("requests"))
            .and_then(Json::as_u64)
            .expect("fleet request sum")
            > 0,
        "fleet sum must aggregate the surviving shards' counters"
    );

    router.shutdown();
    for h in handles {
        h.shutdown();
    }
}

#[test]
fn peer_artifact_protocol_round_trips_through_the_router() {
    let (handles, _addrs, router, router_addr) = boot_fleet(3);

    let name = "clustertest";
    let key = 0x00ab_u64;
    let payload = "peer payload, framed and checksummed\n";
    let framed = bdc_exec::frame_artifact(payload);

    // Store via the router: routed to the artifact's ring owner.
    let mut conn = Connection::open(&router_addr).expect("connect router");
    let store = conn
        .post(
            &format!("/v1/peer/artifact?name={name}&key={key:016x}"),
            &framed,
        )
        .expect("peer store");
    assert_eq!(
        store.status,
        200,
        "{:?}",
        String::from_utf8_lossy(&store.body)
    );
    let owner = store
        .header("x-bdc-shard")
        .expect("store carries owner id")
        .to_string();
    assert_eq!(
        owner,
        Ring::new(3, VNODES, RING_SEED)
            .owner(artifact_slot(name, key))
            .to_string(),
        "peer routes must land on the ring owner"
    );

    // Fetch it back via the router: same owner, identical framed bytes.
    let fetch = conn
        .get(&format!("/v1/peer/artifact?name={name}&key={key:016x}"))
        .expect("peer fetch");
    assert_eq!(fetch.status, 200);
    assert_eq!(fetch.body, framed.as_bytes(), "framed round trip");
    assert_eq!(fetch.header("x-bdc-shard"), Some(owner.as_str()));

    // A missing artifact is a clean 404 through the same path.
    let miss = conn
        .get("/v1/peer/artifact?name=definitely-absent&key=00000000000000ff")
        .expect("peer miss");
    assert_eq!(miss.status, 404);

    // Bad addresses are rejected before touching any shard: the error is
    // rendered locally by the router, so it carries no shard id.
    let bad = conn
        .get("/v1/peer/artifact?name=../evil&key=zz")
        .expect("peer bad");
    assert_eq!(bad.status, 400);
    assert!(bad.header("x-bdc-shard").is_none());

    router.shutdown();
    for h in handles {
        h.shutdown();
    }
}
