//! Property tests for the consistent-hash ring the whole fleet agrees on.
//!
//! Three properties make sharded serving safe: the ring spreads keys
//! evenly (no hot shard), it is a pure function of `(shards, vnodes,
//! seed)` (every process derives the same topology), and removing a shard
//! moves only that shard's keys (failover does not reshuffle the fleet).

use bdc_cluster::cluster::{key_slot, Ring, DEFAULT_VNODES};
use bdc_cluster::{Breaker, BreakerConfig, BreakerDecision};
use proptest::prelude::*;

/// How many synthetic keys each property samples the ring with.
const KEYS: u64 = 1_000;

fn owners(ring: &Ring, keys: u64) -> Vec<usize> {
    (0..keys).map(|k| ring.owner(key_slot(k))).collect()
}

proptest! {
    /// Balance: at 1k keys and 128 vnodes, the busiest shard carries at
    /// most 3x the quietest. (The bound is deliberately loose — it guards
    /// against a broken hash collapsing the ring, not against the normal
    /// variance of consistent hashing.)
    #[test]
    fn ring_load_is_bounded(shards in 2usize..=8, seed in any::<u64>()) {
        let ring = Ring::new(shards, DEFAULT_VNODES, seed);
        let mut load = vec![0u64; shards];
        for owner in owners(&ring, KEYS) {
            load[owner] += 1;
        }
        let max = *load.iter().max().unwrap();
        let min = *load.iter().min().unwrap();
        prop_assert!(min > 0, "a shard received zero keys: {load:?}");
        prop_assert!(
            (max as f64) / (min as f64) <= 3.0,
            "load ratio {max}/{min} exceeds 3.0 for {shards} shards seed {seed}: {load:?}"
        );
    }

    /// Determinism: the ring is a pure function of its parameters — two
    /// independently constructed rings (as router and workers construct
    /// them, in different processes and regardless of `BDC_WORKERS`)
    /// assign every key identically.
    #[test]
    fn ring_is_deterministic(shards in 1usize..=8, seed in any::<u64>()) {
        let a = Ring::new(shards, DEFAULT_VNODES, seed);
        let b = Ring::new(shards, DEFAULT_VNODES, seed);
        prop_assert_eq!(a.shard_ids(), b.shard_ids());
        prop_assert_eq!(owners(&a, KEYS), owners(&b, KEYS));
    }

    /// Minimal remap: dropping one shard moves only the keys it owned —
    /// every key owned by a surviving shard keeps its owner, and the
    /// moved fraction stays well under 2/N.
    #[test]
    fn removal_moves_only_the_lost_shards_keys(
        shards in 3usize..=8,
        seed in any::<u64>(),
        victim_pick in any::<u64>(),
    ) {
        let victim = (victim_pick % shards as u64) as usize;
        let full = Ring::new(shards, DEFAULT_VNODES, seed);
        let reduced = full.without(victim, DEFAULT_VNODES, seed);
        prop_assert_eq!(reduced.shard_ids().len(), shards - 1);

        let mut moved = 0u64;
        for key in 0..KEYS {
            let slot = key_slot(key);
            let before = full.owner(slot);
            let after = reduced.owner(slot);
            if before == victim {
                moved += 1;
                prop_assert_ne!(after, victim);
            } else {
                prop_assert_eq!(
                    before, after,
                    "key {} owned by surviving shard {} moved to {}",
                    key, before, after
                );
            }
        }
        let bound = (2.0 / shards as f64) * KEYS as f64;
        prop_assert!(
            (moved as f64) < bound,
            "{moved} of {KEYS} keys moved; bound {bound:.0} (shards {shards}, seed {seed})"
        );
    }

    /// The failover order is the ring's replica walk: the first replica is
    /// the owner, all replicas are distinct, and every shard appears.
    #[test]
    fn replicas_start_at_the_owner_and_cover_the_fleet(
        shards in 1usize..=8,
        seed in any::<u64>(),
        key in any::<u64>(),
    ) {
        let ring = Ring::new(shards, DEFAULT_VNODES, seed);
        let slot = key_slot(key);
        let reps = ring.replicas(slot);
        prop_assert_eq!(reps.len(), shards);
        prop_assert_eq!(reps[0], ring.owner(slot));
        let mut sorted = reps.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), shards, "duplicate replica in {reps:?}");
    }

    /// Breaker failover preserves coverage: for any pattern of open
    /// breakers short of the whole fleet, walking the replica order and
    /// skipping open shards (exactly what the router's proxy loop does)
    /// still lands on a healthy shard — and on the *first* healthy shard
    /// in ring order, so two routers with the same breaker state agree.
    #[test]
    fn breaker_skips_preserve_replica_coverage(
        shards in 2usize..=8,
        seed in any::<u64>(),
        key in any::<u64>(),
        open_mask in any::<u8>(),
    ) {
        let open: Vec<bool> = (0..shards).map(|s| (open_mask >> s) & 1 == 1).collect();
        prop_assume!(open.iter().any(|o| !o));
        let cfg = BreakerConfig::default();
        let breakers: Vec<Breaker> = (0..shards).map(|_| Breaker::new(cfg.clone())).collect();
        for (s, is_open) in open.iter().enumerate() {
            if *is_open {
                for _ in 0..cfg.min_samples {
                    breakers[s].record(false, true, 0);
                }
                prop_assert!(breakers[s].is_open(), "shard {s} failed to open");
            }
        }
        let ring = Ring::new(shards, DEFAULT_VNODES, seed);
        let reps = ring.replicas(key_slot(key));
        let chosen = reps
            .iter()
            .copied()
            .find(|&s| breakers[s].decide() == BreakerDecision::Allow);
        let expected = reps.iter().copied().find(|&s| !open[s]);
        prop_assert_eq!(
            chosen, expected,
            "replica walk over {:?} with open set {:?} must land on the first healthy shard",
            reps, open
        );
    }
}
