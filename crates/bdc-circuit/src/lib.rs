#![warn(missing_docs)]

//! A small SPICE-class analog circuit simulator.
//!
//! `bdc-circuit` stands in for HSPICE in the paper's flow (Figure 10): it
//! simulates the standard cells of the organic and silicon libraries at the
//! transistor level. It implements:
//!
//! * **Modified nodal analysis** over resistors, capacitors, independent
//!   voltage sources, and FETs bound to any [`bdc_device::DeviceModel`]
//!   ([`netlist`]).
//! * **Newton–Raphson DC operating point** with voltage-step damping and a
//!   gmin-stepping fallback ([`dc`]).
//! * **DC transfer sweeps** with solution continuation, used for every
//!   voltage-transfer-characteristic experiment in the paper's §4
//!   ([`sweep`]).
//! * **Transient analysis** (backward Euler or trapezoidal companion models)
//!   used by NLDM cell characterization ([`tran`]).
//! * **Waveform measurements**: switching threshold by the mirror-intersect
//!   method, peak gain, unity-gain and maximum-equal-criterion noise
//!   margins, static power, and edge/crossing timing ([`measure`]).
//!
//! # Example: a resistor divider
//!
//! ```
//! use bdc_circuit::{Circuit, DcSolver};
//!
//! let mut c = Circuit::new();
//! let vin = c.node("in");
//! let mid = c.node("mid");
//! c.vsource(vin, Circuit::GND, 10.0);
//! c.resistor(vin, mid, 1_000.0);
//! c.resistor(mid, Circuit::GND, 1_000.0);
//! let op = DcSolver::new().solve(&c)?;
//! assert!((op.voltage(mid) - 5.0).abs() < 1e-6);
//! # Ok::<(), bdc_circuit::CircuitError>(())
//! ```

pub mod batch;
pub mod dc;
pub mod error;
pub mod export;
pub mod linalg;
pub mod measure;
pub mod netlist;
pub mod sweep;
pub mod tran;

pub use batch::{BatchLane, BatchTranSolver};
pub use dc::{DcSolver, Operating};
pub use error::CircuitError;
pub use export::{describe, write_spice};
pub use linalg::DenseMatrix;
pub use measure::{crossing_time, InverterDc, NoiseMargins, VtcCurve};
pub use netlist::{Circuit, Element, NodeId};
pub use sweep::{dc_sweep, SweepPoint};
pub use tran::{Integrator, TranResult, TranSolver, Waveform};
