//! Batched lockstep transient analysis over a structure-of-arrays state.
//!
//! Cell characterization solves the *same topology* many times: every
//! (slew, load) grid point differs only in element values and drive
//! waveforms. This module advances a whole batch of such lanes through one
//! shared time loop: the matrix *structure* (zero pattern, pivot-candidate
//! rows, element ordering) is identical across lanes, so every inner loop —
//! mat-vec, LU elimination, triangular solves, Newton updates — runs with
//! the lane index innermost over contiguous lane runs and auto-vectorizes.
//! Cells have < 30 unknowns, so the entire batch state stays cache-resident.
//!
//! # Bit-identity contract
//!
//! A lane's trajectory is **bit-identical** to running [`TranSolver`] on
//! that lane's circuit alone. Everything per-lane that affects rounding is
//! replicated exactly from the scalar kernel:
//!
//! * per-lane partial pivoting (pivot rows may differ between lanes — row
//!   swaps and interchange vectors are per lane);
//! * the scalar elimination's `factor == 0.0` row skip becomes a per-lane
//!   select (`if f == 0.0 { old } else { old - f·p }`), preserving `-0.0`
//!   exactly where the skip would;
//! * per-lane Newton convergence masks with the same iteration-indexed
//!   residual checks, step clamp, and 8-trial backtracking line search;
//! * per-lane time-step fallback: a lane that fails a full step drops into
//!   the scalar [`TranSolver`] step-cutting path and rejoins the lockstep
//!   loop at the next step.
//!
//! The intentional departures are *work scheduling*, never values: FET
//! model evaluations are cached by exact `(v_gs, v_ds)` bits, the Jacobian
//! `g_m`/`g_ds` stamps are deferred until after the residual convergence
//! check (the scalar kernel evaluates them unconditionally and discards
//! them on the converged iteration), and when lanes retire or fail the
//! survivors are **compacted** into a narrower structure-of-arrays so every
//! vector loop runs at the live width. All three reuse, skip, or relocate
//! evaluations of per-lane-independent computations — they never change a
//! value that is used: every kernel loop is elementwise in the lane
//! dimension, so a lane's arithmetic is identical at any slot and width.

use std::sync::Arc;

use bdc_device::DeviceModel;

use crate::dc::{DcSolver, Operating};
use crate::error::CircuitError;
use crate::netlist::{Circuit, Element, NodeId};
use crate::tran::{
    build_base, build_step_consts, update_cap_hist, Integrator, Scratch, TranSolver, Waveform,
};

/// One independent simulation in a batch: a circuit (structurally identical
/// to every other lane's), its drive waveforms, and an optional precomputed
/// initial state (the shared-DC-operating-point reuse characterization
/// depends on).
#[derive(Debug, Clone)]
pub struct BatchLane {
    /// The lane's circuit. Element *values* (resistances, capacitances,
    /// device models) may differ between lanes; kinds, terminals, and
    /// ordering must match.
    pub circuit: Circuit,
    /// Waveforms attached to voltage sources, as in [`TranSolver::drive`].
    pub drives: Vec<(usize, Waveform)>,
    /// Node voltages seeding the run (see
    /// [`TranSolver::with_initial_state`]); `None` solves DC internally.
    pub initial_state: Option<Vec<f64>>,
}

impl BatchLane {
    /// Wraps a circuit with no drives and an internal DC initial condition.
    pub fn new(circuit: Circuit) -> Self {
        BatchLane {
            circuit,
            drives: Vec::new(),
            initial_state: None,
        }
    }

    /// Attaches a waveform to voltage source `src_idx`.
    #[must_use]
    pub fn drive(mut self, src_idx: usize, waveform: Waveform) -> Self {
        self.drives.push((src_idx, waveform));
        self
    }

    /// Seeds the lane with a precomputed operating point.
    #[must_use]
    pub fn with_initial_state(mut self, op: &Operating) -> Self {
        self.initial_state = Some(op.node_voltages().to_vec());
        self
    }
}

/// Fixed-step transient solver advancing many lanes in lockstep.
///
/// Mirrors [`TranSolver`]'s numerical parameters; see the
/// [module documentation](self) for the bit-identity contract.
#[derive(Debug, Clone)]
pub struct BatchTranSolver {
    tstep: f64,
    tstop: f64,
    /// NR iteration limit per time step.
    pub max_iterations: usize,
    /// Voltage convergence tolerance per step (V).
    pub v_tol: f64,
    /// Largest voltage change per NR iteration (V).
    pub step_clamp: f64,
    /// Capacitor integration method.
    pub integrator: Integrator,
}

impl BatchTranSolver {
    /// Creates a solver with time step `tstep` and end time `tstop`.
    ///
    /// # Panics
    /// Panics if either is non-positive or non-finite.
    pub fn new(tstep: f64, tstop: f64) -> Self {
        assert!(tstep > 0.0 && tstep.is_finite(), "tstep must be positive");
        assert!(tstop > 0.0 && tstop.is_finite(), "tstop must be positive");
        BatchTranSolver {
            tstep,
            tstop,
            max_iterations: 150,
            v_tol: 1.0e-7,
            step_clamp: 5.0,
            integrator: Integrator::default(),
        }
    }

    /// Sets the per-iteration voltage step clamp.
    #[must_use]
    pub fn with_step_clamp(mut self, clamp: f64) -> Self {
        assert!(clamp > 0.0, "step clamp must be positive");
        self.step_clamp = clamp;
        self
    }

    /// Selects the capacitor integration method.
    #[must_use]
    pub fn with_integrator(mut self, integrator: Integrator) -> Self {
        self.integrator = integrator;
        self
    }

    /// Runs all lanes in lockstep. After every accepted step the observer
    /// is called per live lane (in lane order) with
    /// `(lane, t, non-ground node voltages)`; returning `false` retires the
    /// lane early with an `Ok(())` result — characterization uses this to
    /// stop a lane as soon as every timing crossing has been measured.
    /// The observer also sees the `t = 0` initial state.
    ///
    /// Per-lane failures never abort the batch: the lane's slot records the
    /// error and the remaining lanes continue. Whenever lanes retire or
    /// fail, the survivors are compacted into a narrower
    /// structure-of-arrays so every vector loop — mat-vec, LU, line-search
    /// trials — runs at the live width. Compaction is pure work
    /// scheduling: each lane's arithmetic is elementwise in the lane
    /// dimension and therefore independent of its slot and of the batch
    /// width, so results stay bit-identical.
    ///
    /// # Panics
    /// Panics if `lanes` is empty or the lanes are not structurally
    /// identical (element kinds/terminals, node count, source count).
    pub fn run<F>(&self, lanes: &[BatchLane], mut observer: F) -> Vec<Result<(), CircuitError>>
    where
        F: FnMut(usize, f64, &[f64]) -> bool,
    {
        assert!(!lanes.is_empty(), "batch needs at least one lane");
        assert_same_structure(lanes);
        let nl = lanes.len();
        let template = &lanes[0].circuit;
        let nv = template.node_count() - 1;
        let ns = template.vsource_count();
        let n = nv + ns;

        let mut results: Vec<Result<(), CircuitError>> = (0..nl).map(|_| Ok(())).collect();

        // Per-lane work circuits with drives at their t = 0 values — the
        // same preparation TranSolver::run performs.
        let mut works: Vec<Circuit> = lanes
            .iter()
            .map(|ln| {
                let mut w = ln.circuit.clone();
                for (idx, wf) in &ln.drives {
                    w.set_vsource(*idx, wf.eval(0.0));
                }
                w
            })
            .collect();

        // Initial condition per lane (bit-identical to the scalar paths),
        // plus the t = 0 observation the scalar result records. A lane the
        // observer retires immediately never enters the lockstep state;
        // `order` maps each live slot back to its original lane index.
        let mut order: Vec<usize> = Vec::with_capacity(nl);
        let mut x0s: Vec<Vec<f64>> = Vec::with_capacity(nl);
        let mut state_l = vec![0.0f64; nv];
        for (l, ln) in lanes.iter().enumerate() {
            let mut x0 = vec![0.0f64; n];
            let init = match &ln.initial_state {
                Some(v0) => works[l].validate().map(|()| {
                    let k = v0.len().min(nv);
                    x0[..k].copy_from_slice(&v0[..k]);
                }),
                None => DcSolver::new().solve(&works[l]).map(|op0| {
                    x0[..nv].copy_from_slice(op0.node_voltages());
                }),
            };
            if let Err(e) = init {
                results[l] = Err(e);
                continue;
            }
            state_l.copy_from_slice(&x0[..nv]);
            if observer(l, 0.0, &state_l) {
                order.push(l);
                x0s.push(x0);
            }
        }

        let steps = (self.tstop / self.tstep).ceil() as usize;
        let h = self.tstep;
        let mut w = order.len();
        if w == 0 {
            return results;
        }

        // Persistent SoA state, packed at the live width: the batch state
        // vector and the per-lane constant base matrices.
        let mut x = vec![0.0f64; n * w];
        for (s, x0) in x0s.iter().enumerate() {
            scatter_lane(x0, w, s, n, &mut x);
        }
        let mut base = BatchMat::zeros(n, w);
        for (s, &l) in order.iter().enumerate() {
            let b = build_base(&works[l], n, nv, h, self.integrator);
            for r in 0..n {
                for c in 0..n {
                    base.data[(r * n + c) * w + s] = b.get(r, c);
                }
            }
        }

        // FET structure (shared) and models per live slot (usually clones
        // of the same Arc in a characterization pack, but allowed to
        // differ).
        let fets = collect_fets(template);
        let nf = fets.len();
        let mut slot_models: Vec<Vec<Arc<dyn DeviceModel>>> = order
            .iter()
            .map(|&l| {
                works[l]
                    .elements()
                    .iter()
                    .filter_map(|e| match e {
                        Element::Fet { model, .. } => Some(model.clone()),
                        _ => None,
                    })
                    .collect()
            })
            .collect();

        // Companion history per lane in the scalar layout: the step-constant
        // build and the fallback path both consume it as-is.
        let n_caps = template
            .elements()
            .iter()
            .filter(|e| matches!(e, Element::Capacitor { .. }))
            .count();
        let mut cap_hist: Vec<Vec<f64>> = (0..nl).map(|_| vec![0.0f64; n_caps]).collect();

        // Scalar fallback machinery: one solver per lane carrying that
        // lane's drives, plus shared scratch buffers.
        let fallback: Vec<TranSolver> = lanes
            .iter()
            .map(|ln| {
                let mut s = TranSolver::new(self.tstep, self.tstop)
                    .with_step_clamp(self.step_clamp)
                    .with_integrator(self.integrator);
                for (idx, wf) in &ln.drives {
                    s = s.drive(*idx, wf.clone());
                }
                s.max_iterations = self.max_iterations;
                s.v_tol = self.v_tol;
                s
            })
            .collect();
        let mut scalar_scratch = Scratch::new(n);
        let mut scalar_cstep = vec![0.0f64; n];
        let mut lane_x = vec![0.0f64; n];
        let mut lane_prev = vec![0.0f64; nv];

        let mut nr = NrState::new(n, nv, w, nf);
        let mut c_step = vec![0.0f64; n * w];
        let mut prev = vec![0.0f64; nv * w];
        let mut x_save = vec![0.0f64; n * w];
        let mut c_tmp = vec![0.0f64; n];
        let mut keep = vec![true; w];

        for k in 1..=steps {
            let t = k as f64 * h;
            prev.copy_from_slice(&x[..nv * w]);
            x_save.copy_from_slice(&x);
            for (s, &l) in order.iter().enumerate() {
                for (idx, wf) in &lanes[l].drives {
                    works[l].set_vsource(*idx, wf.eval(t));
                }
                gather_lane(&prev, w, s, nv, &mut lane_prev);
                build_step_consts(
                    &works[l],
                    &lane_prev,
                    &cap_hist[l],
                    h,
                    self.integrator,
                    nv,
                    &mut c_tmp,
                );
                scatter_lane(&c_tmp, w, s, n, &mut c_step);
            }

            let outcomes = self.nr_lockstep(&base, &c_step, &mut x, &fets, &slot_models, &mut nr);

            keep.clear();
            keep.resize(w, true);
            for (s, outcome) in outcomes.into_iter().enumerate() {
                let l = order[s];
                match outcome {
                    StepOutcome::Converged => {
                        if self.integrator == Integrator::Trapezoidal {
                            gather_lane(&x, w, s, n, &mut lane_x);
                            gather_lane(&prev, w, s, nv, &mut lane_prev);
                            update_cap_hist(&works[l], &lane_x, &lane_prev, h, &mut cap_hist[l]);
                        }
                    }
                    StepOutcome::NoConvergence { residual } => {
                        // Per-lane local step cutting: exactly the scalar
                        // run loop's recovery, on this lane's state alone.
                        gather_lane(&x_save, w, s, n, &mut lane_x);
                        gather_lane(&prev, w, s, nv, &mut lane_prev);
                        let fell = fallback[l].advance_subdivided(
                            &mut works[l],
                            &lane_prev,
                            t - h,
                            h,
                            nv,
                            n,
                            &mut lane_x,
                            &mut cap_hist[l],
                            &mut scalar_cstep,
                            &mut scalar_scratch,
                            residual,
                        );
                        match fell {
                            Ok(()) => scatter_lane(&lane_x, w, s, n, &mut x),
                            Err(e) => {
                                results[l] = Err(e);
                                keep[s] = false;
                                continue;
                            }
                        }
                    }
                    StepOutcome::Failed(e) => {
                        results[l] = Err(e);
                        keep[s] = false;
                        continue;
                    }
                }
                gather_lane(&x, w, s, nv, &mut state_l);
                if !observer(l, t, &state_l) {
                    keep[s] = false;
                }
            }

            // Compact the persistent SoA state to the surviving slots so
            // the next step's vector loops run at the live width. Slots are
            // independent, so moving a lane left changes which cache line
            // it occupies — never its values.
            if keep.iter().any(|&kp| !kp) {
                let new_w = keep.iter().filter(|&&kp| kp).count();
                if new_w == 0 {
                    return results;
                }
                let mut new_order = Vec::with_capacity(new_w);
                let mut new_models = Vec::with_capacity(new_w);
                let mut new_x = vec![0.0f64; n * new_w];
                let mut new_base = BatchMat::zeros(n, new_w);
                let mut new_cache = IdsCache::new(nf * new_w);
                let mut new_lin = LinCache::new(nf * new_w);
                let mut d = 0usize;
                for s in 0..w {
                    if !keep[s] {
                        continue;
                    }
                    new_order.push(order[s]);
                    new_models.push(std::mem::take(&mut slot_models[s]));
                    for i in 0..n {
                        new_x[i * new_w + d] = x[i * w + s];
                    }
                    for rc in 0..n * n {
                        new_base.data[rc * new_w + d] = base.data[rc * w + s];
                    }
                    for fi in 0..nf {
                        let (src, dst) = (fi * w + s, fi * new_w + d);
                        for way in 0..2 {
                            let (se, de) = (2 * src + way, 2 * dst + way);
                            new_cache.vgs[de] = nr.cache.vgs[se];
                            new_cache.vds[de] = nr.cache.vds[se];
                            new_cache.ids[de] = nr.cache.ids[se];
                            new_lin.vgs[de] = nr.lin_cache.vgs[se];
                            new_lin.vds[de] = nr.lin_cache.vds[se];
                            new_lin.gm[de] = nr.lin_cache.gm[se];
                            new_lin.gds[de] = nr.lin_cache.gds[se];
                        }
                        new_cache.next[dst] = nr.cache.next[src];
                        new_lin.next[dst] = nr.lin_cache.next[src];
                    }
                    d += 1;
                }
                order = new_order;
                slot_models = new_models;
                x = new_x;
                base = new_base;
                w = new_w;
                nr = NrState::new(n, nv, w, nf);
                nr.cache = new_cache;
                nr.lin_cache = new_lin;
                c_step = vec![0.0f64; n * w];
                prev = vec![0.0f64; nv * w];
                x_save = vec![0.0f64; n * w];
            }
        }
        results
    }

    /// One lockstep NR time step across the (compacted) live batch — every
    /// slot is live at entry. Replicates `TranSolver::nr_solve_step` per
    /// lane; see the module docs for the scheduling-only departures
    /// (ids cache, deferred Jacobian, compaction).
    fn nr_lockstep(
        &self,
        base: &BatchMat,
        c_step: &[f64],
        x: &mut [f64],
        fets: &[FetRef],
        slot_models: &[Vec<Arc<dyn DeviceModel>>],
        s: &mut NrState,
    ) -> Vec<StepOutcome> {
        let nl = base.lanes;
        let n = base.n;
        let nv = s.nv;
        let nf = fets.len();
        let mut out: Vec<StepOutcome> = (0..nl)
            .map(|_| StepOutcome::NoConvergence {
                residual: f64::INFINITY,
            })
            .collect();
        // Residual norms by batch slot, so mid-step compaction never has
        // to move them.
        let mut last_res = vec![f64::INFINITY; nl];
        let mut res_full = vec![f64::INFINITY; nl];

        // Iterating working set: compact column `j` holds batch slot
        // `live[j]`. Every vector loop runs at width `m = live.len()`;
        // on straggler steps (see `COMPACT_AFTER`) the set is re-packed
        // from the batch-width sources (`base`, `c_step`, `x`) so the
        // remaining iterations stop paying for finished lanes. `base` is
        // constant across the run, so `base_c` only needs re-gathering
        // after a step that compacted it.
        let mut live: Vec<usize> = (0..nl).collect();
        let mut m = nl;
        if s.base_dirty {
            s.base_c.set_lanes(nl);
            s.base_c.copy_from(base);
            s.base_dirty = false;
        }
        s.x_c[..n * nl].copy_from_slice(x);
        s.c_step_c[..n * nl].copy_from_slice(c_step);
        let mut running: Vec<bool> = vec![true; m];

        // Columns finishing before this iteration stay in place under a
        // mask (compacting every event would cost more in re-gathers than
        // it saves on short steps); past it, a step is a straggler and the
        // survivors are worth re-packing.
        const COMPACT_AFTER: usize = 8;

        for it in 0..self.max_iterations {
            if m == 0 {
                break;
            }
            // f = base·x + c_step + FET channel currents, at live width.
            s.base_c.mul_vec_into(&s.x_c[..n * m], &mut s.f[..n * m]);
            for (fi, ci) in s.f[..n * m].iter_mut().zip(&s.c_step_c[..n * m]) {
                *fi += *ci;
            }
            stamp_ids(
                fets,
                slot_models,
                &s.x_c[..n * m],
                &live,
                nl,
                &running,
                &mut s.f,
                &mut s.cache,
                None,
            );

            for j in 0..m {
                if !running[j] {
                    continue;
                }
                let l = live[j];
                let (rf, lr) = lane_residuals(&s.f, m, j, n, nv);
                res_full[l] = rf;
                last_res[l] = lr;
                if it > 0 && rf < 1.0e-10 {
                    out[l] = StepOutcome::Converged;
                    running[j] = false;
                }
            }
            if !running.iter().any(|&r| r) {
                break;
            }

            // Jacobian: constant stamps restored wholesale, FET
            // linearizations added for the lanes still iterating. The
            // gm/gds pair is memoized on exact voltage bits like the ids
            // cache: in settled stretches the state repeats bit-for-bit
            // step after step, and the (expensive, finite-differenced)
            // linearization of a pure model is identical on a hit.
            s.jac.set_lanes(m);
            s.jac.copy_from(&s.base_c);
            for (fi, fet) in fets.iter().enumerate() {
                for j in 0..m {
                    if !running[j] {
                        continue;
                    }
                    let vgs = fet_v(&s.x_c, m, j, fet.rg) - fet_v(&s.x_c, m, j, fet.rs);
                    let vds = fet_v(&s.x_c, m, j, fet.rd) - fet_v(&s.x_c, m, j, fet.rs);
                    let l = live[j];
                    let cj = fi * nl + l;
                    let lin = &mut s.lin_cache;
                    let (gm, gds) = if let Some(g) = lin.get(cj, vgs, vds) {
                        g
                    } else {
                        let model = slot_models[l][fi].as_ref();
                        let g = (model.gm(vgs, vds), model.gds(vgs, vds));
                        lin.put(cj, vgs, vds, g.0, g.1);
                        g
                    };
                    s.jac.stamp_fet_jac(j, fet, gm, gds);
                }
            }

            for (r, fv) in s.rhs[..n * m].iter_mut().zip(s.f[..n * m].iter()) {
                *r = -fv;
            }
            s.jac
                .lu_factor(&mut s.piv[..n * m], &running, &mut s.sing[..m]);
            for j in 0..m {
                if running[j] {
                    if let Some(col) = s.sing[j] {
                        out[live[j]] =
                            StepOutcome::Failed(CircuitError::SingularMatrix { pivot: col });
                        running[j] = false;
                    }
                }
            }
            if !running.iter().any(|&r| r) {
                break;
            }
            s.jac
                .lu_solve(&s.piv[..n * m], &running, &mut s.rhs[..n * m]);
            for i in 0..n {
                let row = &s.rhs[i * m..(i + 1) * m];
                let dst = &mut s.dx[i * m..(i + 1) * m];
                if i < nv {
                    for (d, r) in dst.iter_mut().zip(row) {
                        *d = r.clamp(-self.step_clamp, self.step_clamp);
                    }
                } else {
                    dst.copy_from_slice(row);
                }
            }

            // Per-lane backtracking line search, trials in lockstep. A lane
            // whose trial contracts the residual freezes its scale (the
            // scalar break); the rest keep halving.
            let mut searching: Vec<bool> = running.clone();
            for j in 0..m {
                s.scale[j] = 1.0;
                s.best_scale[j] = 1.0;
                s.best_res[j] = f64::INFINITY;
            }
            for _half in 0..8 {
                if !searching.iter().any(|&g| g) {
                    break;
                }
                for i in 0..n * m {
                    s.x_try[i] = s.x_c[i] + s.scale[i % m] * s.dx[i];
                }
                s.base_c.mul_vec_into(&s.x_try[..n * m], &mut s.f[..n * m]);
                for (fi, ci) in s.f[..n * m].iter_mut().zip(&s.c_step_c[..n * m]) {
                    *fi += *ci;
                }
                stamp_ids(
                    fets,
                    slot_models,
                    &s.x_try[..n * m],
                    &live,
                    nl,
                    &searching,
                    &mut s.f,
                    &mut s.cache,
                    Some(&mut s.trial_ids),
                );
                for j in 0..m {
                    if !searching[j] {
                        continue;
                    }
                    let (res_try, _) = lane_residuals(&s.f, m, j, n, nv);
                    if res_try < s.best_res[j] {
                        s.best_res[j] = res_try;
                        s.best_scale[j] = s.scale[j];
                        for fi in 0..nf {
                            s.best_ids[fi * m + j] = s.trial_ids[fi * m + j];
                        }
                    }
                    if res_try < res_full[live[j]] {
                        searching[j] = false;
                    } else {
                        s.scale[j] *= 0.5;
                    }
                }
            }

            for j in 0..m {
                if !running[j] {
                    continue;
                }
                let l = live[j];
                if s.best_scale[j] != s.scale[j] {
                    for i in 0..n {
                        let idx = i * m + j;
                        s.x_try[idx] = s.x_c[idx] + s.best_scale[j] * s.dx[idx];
                    }
                }
                let mut dv = 0.0f64;
                for i in 0..n {
                    let idx = i * m + j;
                    s.x_c[idx] = s.x_try[idx];
                    x[i * nl + l] = s.x_try[idx];
                    if i < nv {
                        dv = dv.max((s.best_scale[j] * s.dx[idx]).abs());
                    }
                }
                last_res[l] = s.best_res[j];
                // Seed the ids cache with the accepted trial: the next
                // iteration's residual build re-derives the same
                // (v_gs, v_ds) bits from the updated state, so each FET's
                // first evaluation there is a guaranteed hit.
                for (fi, fet) in fets.iter().enumerate() {
                    let vgs = fet_v(&s.x_c, m, j, fet.rg) - fet_v(&s.x_c, m, j, fet.rs);
                    let vds = fet_v(&s.x_c, m, j, fet.rd) - fet_v(&s.x_c, m, j, fet.rs);
                    let cj = fi * nl + l;
                    s.cache.put(cj, vgs, vds, s.best_ids[fi * m + j]);
                }
                if dv < self.v_tol && s.best_res[j] < 1.0e-9 {
                    out[l] = StepOutcome::Converged;
                    running[j] = false;
                }
            }

            // Compact the working set to the still-running columns and
            // re-gather from the batch-width sources. Pure work
            // scheduling: per-lane arithmetic is identical at any column.
            if it >= COMPACT_AFTER && running.iter().any(|&r| !r) {
                s.base_dirty = true;
                let mut d = 0usize;
                for j in 0..m {
                    if running[j] {
                        live[d] = live[j];
                        d += 1;
                    }
                }
                live.truncate(d);
                m = d;
                s.base_c.set_lanes(m);
                for rc in 0..n * n {
                    for (j, &l) in live.iter().enumerate() {
                        s.base_c.data[rc * m + j] = base.data[rc * nl + l];
                    }
                }
                for i in 0..n {
                    for (j, &l) in live.iter().enumerate() {
                        s.x_c[i * m + j] = x[i * nl + l];
                        s.c_step_c[i * m + j] = c_step[i * nl + l];
                    }
                }
                running.clear();
                running.resize(m, true);
            }
        }
        // Loose final check, mirroring the scalar solver: columns still
        // running when the iteration budget runs out.
        for (j, &l) in live.iter().enumerate() {
            if running[j] {
                out[l] = if last_res[l] < 1.0e-9 {
                    StepOutcome::Converged
                } else {
                    StepOutcome::NoConvergence {
                        residual: last_res[l],
                    }
                };
            }
        }
        out
    }
}

/// Per-step outcome of one lane's lockstep NR solve.
enum StepOutcome {
    Converged,
    NoConvergence { residual: f64 },
    Failed(CircuitError),
}

/// Shared FET terminal structure: matrix row / voltage index per terminal
/// (`None` = ground).
struct FetRef {
    rd: Option<usize>,
    rg: Option<usize>,
    rs: Option<usize>,
}

fn collect_fets(c: &Circuit) -> Vec<FetRef> {
    let ix = |id: NodeId| -> Option<usize> { id.index().checked_sub(1) };
    c.elements()
        .iter()
        .filter_map(|e| match e {
            Element::Fet { d, g, s, .. } => Some(FetRef {
                rd: ix(*d),
                rg: ix(*g),
                rs: ix(*s),
            }),
            _ => None,
        })
        .collect()
}

#[inline]
fn fet_v(x: &[f64], nl: usize, l: usize, r: Option<usize>) -> f64 {
    match r {
        Some(i) => x[i * nl + l],
        None => 0.0,
    }
}

#[inline]
fn gather_lane(soa: &[f64], nl: usize, l: usize, len: usize, out: &mut [f64]) {
    for (i, o) in out.iter_mut().enumerate().take(len) {
        *o = soa[i * nl + l];
    }
}

#[inline]
fn scatter_lane(src: &[f64], nl: usize, l: usize, len: usize, soa: &mut [f64]) {
    for (i, v) in src.iter().enumerate().take(len) {
        soa[i * nl + l] = *v;
    }
}

/// Max |f| over all rows and over the node rows only, for one lane —
/// matching the scalar kernel's two residual norms.
#[inline]
fn lane_residuals(f: &[f64], nl: usize, l: usize, n: usize, nv: usize) -> (f64, f64) {
    let mut full = 0.0f64;
    let mut nodes = 0.0f64;
    for i in 0..n {
        let a = f[i * nl + l].abs();
        full = full.max(a);
        if i < nv {
            nodes = nodes.max(a);
        }
    }
    (full, nodes)
}

/// Per-(FET, lane) channel-current memo keyed on exact `(v_gs, v_ds)` bits.
/// `ids` is a pure function of its terminal voltages, so a hit returns the
/// identical value a fresh evaluation would — reuse never changes results.
struct IdsCache {
    vgs: Vec<f64>,
    vds: Vec<f64>,
    ids: Vec<f64>,
    next: Vec<bool>,
}

impl IdsCache {
    fn new(slots: usize) -> Self {
        IdsCache {
            // NaN never compares equal, so fresh entries always miss.
            vgs: vec![f64::NAN; 2 * slots],
            vds: vec![f64::NAN; 2 * slots],
            ids: vec![0.0; 2 * slots],
            next: vec![false; slots],
        }
    }

    fn get(&self, cj: usize, vgs: f64, vds: f64) -> Option<f64> {
        let b = 2 * cj;
        if self.vgs[b] == vgs && self.vds[b] == vds {
            return Some(self.ids[b]);
        }
        if self.vgs[b + 1] == vgs && self.vds[b + 1] == vds {
            return Some(self.ids[b + 1]);
        }
        None
    }

    /// Inserts (or refreshes) an entry; the victim alternates per slot,
    /// which is what lets the step-periodic converged/trial state pair of
    /// a settled lane survive together.
    fn put(&mut self, cj: usize, vgs: f64, vds: f64, ids: f64) {
        let b = 2 * cj;
        if self.vgs[b] == vgs && self.vds[b] == vds {
            self.ids[b] = ids;
            return;
        }
        if self.vgs[b + 1] == vgs && self.vds[b + 1] == vds {
            self.ids[b + 1] = ids;
            return;
        }
        let v = b + usize::from(self.next[cj]);
        self.vgs[v] = vgs;
        self.vds[v] = vds;
        self.ids[v] = ids;
        self.next[cj] = !self.next[cj];
    }
}

/// Per-(FET, lane) `gm`/`gds` memo keyed on exact `(v_gs, v_ds)` bits —
/// the Jacobian-side twin of [`IdsCache`], saving the (finite-differenced)
/// linearization when a lane's state repeats bit-for-bit between steps.
struct LinCache {
    vgs: Vec<f64>,
    vds: Vec<f64>,
    gm: Vec<f64>,
    gds: Vec<f64>,
    next: Vec<bool>,
}

impl LinCache {
    fn new(slots: usize) -> Self {
        LinCache {
            vgs: vec![f64::NAN; 2 * slots],
            vds: vec![f64::NAN; 2 * slots],
            gm: vec![0.0; 2 * slots],
            gds: vec![0.0; 2 * slots],
            next: vec![false; slots],
        }
    }

    fn get(&self, cj: usize, vgs: f64, vds: f64) -> Option<(f64, f64)> {
        let b = 2 * cj;
        if self.vgs[b] == vgs && self.vds[b] == vds {
            return Some((self.gm[b], self.gds[b]));
        }
        if self.vgs[b + 1] == vgs && self.vds[b + 1] == vds {
            return Some((self.gm[b + 1], self.gds[b + 1]));
        }
        None
    }

    fn put(&mut self, cj: usize, vgs: f64, vds: f64, gm: f64, gds: f64) {
        let b = 2 * cj;
        if (self.vgs[b] == vgs && self.vds[b] == vds)
            || (self.vgs[b + 1] == vgs && self.vds[b + 1] == vds)
        {
            return;
        }
        let v = b + usize::from(self.next[cj]);
        self.vgs[v] = vgs;
        self.vds[v] = vds;
        self.gm[v] = gm;
        self.gds[v] = gds;
        self.next[cj] = !self.next[cj];
    }
}

/// Adds every FET's channel current into the residual for the masked
/// columns of the compact working set (`x`, `f`, and `trial` have width
/// `mask.len()`; `live` maps columns to batch slots for the model and
/// cache lookups, whose stride is the batch width `nl`), reusing cached
/// evaluations. With `trial` present the per-column currents are also
/// stashed so the accepted line-search trial can seed the cache without
/// re-evaluating.
#[allow(clippy::too_many_arguments)]
fn stamp_ids(
    fets: &[FetRef],
    slot_models: &[Vec<Arc<dyn DeviceModel>>],
    x: &[f64],
    live: &[usize],
    nl: usize,
    mask: &[bool],
    f: &mut [f64],
    cache: &mut IdsCache,
    mut trial: Option<&mut [f64]>,
) {
    let m = mask.len();
    for (fi, fet) in fets.iter().enumerate() {
        for (j, &l) in live.iter().enumerate() {
            if !mask[j] {
                continue;
            }
            let vgs = fet_v(x, m, j, fet.rg) - fet_v(x, m, j, fet.rs);
            let vds = fet_v(x, m, j, fet.rd) - fet_v(x, m, j, fet.rs);
            let cj = fi * nl + l;
            let ids = if let Some(v) = cache.get(cj, vgs, vds) {
                v
            } else {
                let v = slot_models[l][fi].ids(vgs, vds);
                cache.put(cj, vgs, vds, v);
                v
            };
            if let Some(t) = trial.as_deref_mut() {
                t[fi * m + j] = ids;
            }
            if let Some(rd) = fet.rd {
                f[rd * m + j] += ids;
            }
            if let Some(rs) = fet.rs {
                f[rs * m + j] -= ids;
            }
        }
    }
}

/// NR work buffers for the lockstep kernel, allocated once per run.
/// All buffers are sized for the full batch width; mid-step compaction
/// uses width-`m` prefixes (the cache alone stays batch-slot indexed).
struct NrState {
    nv: usize,
    jac: BatchMat,
    base_c: BatchMat,
    base_dirty: bool,
    x_c: Vec<f64>,
    c_step_c: Vec<f64>,
    f: Vec<f64>,
    rhs: Vec<f64>,
    dx: Vec<f64>,
    x_try: Vec<f64>,
    piv: Vec<usize>,
    sing: Vec<Option<usize>>,
    scale: Vec<f64>,
    best_scale: Vec<f64>,
    best_res: Vec<f64>,
    cache: IdsCache,
    lin_cache: LinCache,
    trial_ids: Vec<f64>,
    best_ids: Vec<f64>,
}

impl NrState {
    fn new(n: usize, nv: usize, nl: usize, nf: usize) -> Self {
        NrState {
            nv,
            jac: BatchMat::zeros(n, nl),
            base_c: BatchMat::zeros(n, nl),
            base_dirty: true,
            x_c: vec![0.0; n * nl],
            c_step_c: vec![0.0; n * nl],
            f: vec![0.0; n * nl],
            rhs: vec![0.0; n * nl],
            dx: vec![0.0; n * nl],
            x_try: vec![0.0; n * nl],
            piv: vec![0; n * nl],
            sing: vec![None; nl],
            scale: vec![1.0; nl],
            best_scale: vec![1.0; nl],
            best_res: vec![f64::INFINITY; nl],
            cache: IdsCache::new(nf * nl),
            lin_cache: LinCache::new(nf * nl),
            trial_ids: vec![0.0; nf * nl],
            best_ids: vec![0.0; nf * nl],
        }
    }
}

/// A batch of square matrices in lane-innermost storage:
/// `data[(r·n + c)·lanes + lane]`.
struct BatchMat {
    n: usize,
    lanes: usize,
    data: Vec<f64>,
}

impl BatchMat {
    fn zeros(n: usize, lanes: usize) -> Self {
        BatchMat {
            n,
            lanes,
            data: vec![0.0; n * n * lanes],
        }
    }

    fn copy_from(&mut self, other: &BatchMat) {
        self.data.copy_from_slice(&other.data);
    }

    /// Re-widths the matrix to `lanes` lanes, keeping the allocation.
    /// Contents are unspecified afterwards — callers refill before use.
    fn set_lanes(&mut self, lanes: usize) {
        self.lanes = lanes;
        self.data.resize(self.n * self.n * lanes, 0.0);
    }

    #[inline]
    fn add(&mut self, r: usize, c: usize, l: usize, v: f64) {
        self.data[(r * self.n + c) * self.lanes + l] += v;
    }

    /// Adds one FET's `g_m`/`g_ds` linearization for lane `l` — the same
    /// eight stamps as the scalar `dc::stamp_fet`, minus the residual part
    /// (stamped separately by [`stamp_ids`]).
    fn stamp_fet_jac(&mut self, l: usize, fet: &FetRef, gm: f64, gds: f64) {
        if let Some(rd) = fet.rd {
            self.add(rd, rd, l, gds);
            if let Some(rg) = fet.rg {
                self.add(rd, rg, l, gm);
            }
            if let Some(rs) = fet.rs {
                self.add(rd, rs, l, -(gm + gds));
            }
        }
        if let Some(rs) = fet.rs {
            self.add(rs, rs, l, gm + gds);
            if let Some(rg) = fet.rg {
                self.add(rs, rg, l, -gm);
            }
            if let Some(rd) = fet.rd {
                self.add(rs, rd, l, -gds);
            }
        }
    }

    /// `out = A·x` per lane, accumulating in column order exactly like the
    /// scalar `DenseMatrix::mul_vec_into` (a left fold from 0.0).
    fn mul_vec_into(&self, x: &[f64], out: &mut [f64]) {
        let (n, nl) = (self.n, self.lanes);
        for r in 0..n {
            let acc = &mut out[r * nl..(r + 1) * nl];
            acc.fill(0.0);
            for c in 0..n {
                let m = &self.data[(r * n + c) * nl..(r * n + c + 1) * nl];
                let xv = &x[c * nl..(c + 1) * nl];
                for ((a, mi), xi) in acc.iter_mut().zip(m).zip(xv) {
                    *a += mi * xi;
                }
            }
        }
    }

    /// Per-lane LU with partial pivoting, lockstep over columns. Pivot
    /// *rows* are chosen per lane (`piv[col·lanes + l]`); the elimination
    /// replicates the scalar kernel's `factor == 0.0` row skip with a
    /// per-lane select so `-0.0` entries survive bit-exactly. Lanes
    /// outside `mask` are still swept (their data may be garbage — lane
    /// slots are independent, so junk never contaminates a neighbour) but
    /// never report singularity; masked lanes that do underflow a pivot
    /// get their failing column recorded in `sing`.
    fn lu_factor(&mut self, piv: &mut [usize], mask: &[bool], sing: &mut [Option<usize>]) {
        let (n, nl) = (self.n, self.lanes);
        let all = mask.iter().all(|&m| m);
        sing.fill(None);
        for col in 0..n {
            // Per-lane pivot search: strictly-greater wins, row order.
            for l in 0..nl {
                if !mask[l] {
                    continue;
                }
                let mut best = col;
                let mut best_abs = self.data[(col * n + col) * nl + l].abs();
                for r in (col + 1)..n {
                    let a = self.data[(r * n + col) * nl + l].abs();
                    if a > best_abs {
                        best = r;
                        best_abs = a;
                    }
                }
                if best_abs < 1.0e-300 && sing[l].is_none() {
                    sing[l] = Some(col);
                }
                piv[col * nl + l] = best;
                if best != col {
                    for c in 0..n {
                        self.data
                            .swap((col * n + c) * nl + l, (best * n + c) * nl + l);
                    }
                }
            }
            // Lane-vectorized elimination below the pivot row. The pivot
            // row lives strictly before every target row in the SoA
            // buffer, so one split gives LLVM disjoint slices and the
            // inner lane loops compile to straight-line vector selects.
            // When every lane is live (the common case) they are branch-
            // free over the full width; otherwise masked lanes are
            // skipped (their slots hold stale data nothing reads).
            let (top, bottom) = self.data.split_at_mut((col + 1) * n * nl);
            // Pivot row from its diagonal on: [diag | trailing columns].
            let prow = &top[(col * n + col) * nl..(col * n + n) * nl];
            let (pdiag, ptail) = prow.split_at(nl);
            for r in (col + 1)..n {
                let row = &mut bottom[((r - col - 1) * n + col) * nl..((r - col - 1) * n + n) * nl];
                let (fcol, rtail) = row.split_at_mut(nl);
                if all {
                    for (f, p) in fcol.iter_mut().zip(pdiag) {
                        *f /= p;
                    }
                } else {
                    for ((f, p), &m) in fcol.iter_mut().zip(pdiag).zip(mask) {
                        if m {
                            *f /= p;
                        }
                    }
                }
                for (tr, pr) in rtail.chunks_exact_mut(nl).zip(ptail.chunks_exact(nl)) {
                    for l in 0..nl {
                        if !all && !mask[l] {
                            continue;
                        }
                        let fac = fcol[l];
                        let old = tr[l];
                        // Select, not subtract-always: the scalar kernel
                        // skips zero factors, which preserves -0.0.
                        tr[l] = if fac == 0.0 { old } else { old - fac * pr[l] };
                    }
                }
            }
        }
    }

    /// Per-lane forward/back substitution replaying `piv`, replicating the
    /// scalar `lu_solve`'s zero-RHS skip as a per-lane select. Masked
    /// lanes are skipped outright — their `piv` and data slots are stale,
    /// and nothing downstream reads their solution.
    fn lu_solve(&self, piv: &[usize], mask: &[bool], b: &mut [f64]) {
        let (n, nl) = (self.n, self.lanes);
        let all = mask.iter().all(|&m| m);
        for col in 0..n {
            for l in 0..nl {
                if !all && !mask[l] {
                    continue;
                }
                let p = piv[col * nl + l];
                b.swap(col * nl + l, p * nl + l);
            }
            for r in (col + 1)..n {
                let m = &self.data[(r * n + col) * nl..(r * n + col + 1) * nl];
                for l in 0..nl {
                    if !all && !mask[l] {
                        continue;
                    }
                    let bc = b[col * nl + l];
                    let old = b[r * nl + l];
                    b[r * nl + l] = if bc == 0.0 { old } else { old - m[l] * bc };
                }
            }
        }
        for col in (0..n).rev() {
            for l in 0..nl {
                if !all && !mask[l] {
                    continue;
                }
                let mut acc = b[col * nl + l];
                for c in (col + 1)..n {
                    acc -= self.data[(col * n + c) * nl + l] * b[c * nl + l];
                }
                b[col * nl + l] = acc / self.data[(col * n + col) * nl + l];
            }
        }
    }
}

/// Panics unless every lane's circuit is element-for-element structurally
/// identical to lane 0's (kinds, terminals, node and source counts).
/// Element *values* are free to differ — they land in per-lane matrix data.
fn assert_same_structure(lanes: &[BatchLane]) {
    let t = &lanes[0].circuit;
    for (l, ln) in lanes.iter().enumerate().skip(1) {
        let c = &ln.circuit;
        assert_eq!(
            c.node_count(),
            t.node_count(),
            "lane {l}: node count differs"
        );
        assert_eq!(
            c.vsource_count(),
            t.vsource_count(),
            "lane {l}: source count differs"
        );
        assert_eq!(
            c.elements().len(),
            t.elements().len(),
            "lane {l}: element count differs"
        );
        for (ei, (a, b)) in t.elements().iter().zip(c.elements()).enumerate() {
            let same = match (a, b) {
                (
                    Element::Resistor { a: a1, b: b1, .. },
                    Element::Resistor { a: a2, b: b2, .. },
                ) => a1 == a2 && b1 == b2,
                (
                    Element::Capacitor { a: a1, b: b1, .. },
                    Element::Capacitor { a: a2, b: b2, .. },
                ) => a1 == a2 && b1 == b2,
                (
                    Element::VSource {
                        pos: p1, neg: n1, ..
                    },
                    Element::VSource {
                        pos: p2, neg: n2, ..
                    },
                ) => p1 == p2 && n1 == n2,
                (
                    Element::Fet {
                        d: d1,
                        g: g1,
                        s: s1,
                        ..
                    },
                    Element::Fet {
                        d: d2,
                        g: g2,
                        s: s2,
                        ..
                    },
                ) => d1 == d2 && g1 == g2 && s1 == s2,
                _ => false,
            };
            assert!(same, "lane {l}: element {ei} differs structurally");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tran::TranResult;
    use bdc_device::{SiliconMosModel, SiliconMosParams};

    type Trace = Vec<(f64, Vec<f64>)>;

    /// Runs the batch and collects each lane's recorded waveform,
    /// mirroring what `TranResult` stores.
    fn run_collect(
        solver: &BatchTranSolver,
        lanes: &[BatchLane],
    ) -> (Vec<Result<(), CircuitError>>, Vec<Trace>) {
        let mut traces: Vec<Trace> = lanes.iter().map(|_| Vec::new()).collect();
        let res = solver.run(lanes, |l, t, state| {
            traces[l].push((t, state.to_vec()));
            true
        });
        (res, traces)
    }

    fn assert_trace_matches(trace: &[(f64, Vec<f64>)], scalar: &TranResult, nv: usize) {
        assert_eq!(trace.len(), scalar.times().len());
        for (i, (t, state)) in trace.iter().enumerate() {
            assert_eq!(*t, scalar.times()[i], "time at step {i}");
            for (v, &got) in state.iter().enumerate().take(nv) {
                let want = scalar.voltage_at(i, NodeId::from_index(v + 1));
                assert!(
                    got == want || (got.is_nan() && want.is_nan()),
                    "step {i} node {v}: batch {got:e} vs scalar {want:e}"
                );
            }
        }
    }

    fn rc_lane(cap: f64) -> (Circuit, usize) {
        let mut c = Circuit::new();
        let a = c.node("a");
        let out = c.node("out");
        let s = c.vsource(a, Circuit::GND, 0.0);
        c.resistor(a, out, 1.0e3);
        c.capacitor(out, Circuit::GND, cap);
        (c, s)
    }

    #[test]
    fn rc_lanes_match_scalar_bitwise() {
        let wave = Waveform::ramp(0.0, 1.0, 1.0e-4, 2.0e-4);
        let caps = [0.3e-6, 1.0e-6, 3.3e-6];
        let lanes: Vec<BatchLane> = caps
            .iter()
            .map(|&cap| {
                let (c, s) = rc_lane(cap);
                BatchLane::new(c).drive(s, wave.clone())
            })
            .collect();
        let batch = BatchTranSolver::new(1.0e-5, 2.0e-3);
        let (res, traces) = run_collect(&batch, &lanes);
        for (l, &cap) in caps.iter().enumerate() {
            res[l].as_ref().expect("lane ok");
            let (c, s) = rc_lane(cap);
            let scalar = TranSolver::new(1.0e-5, 2.0e-3)
                .drive(s, wave.clone())
                .run(&c)
                .unwrap();
            assert_trace_matches(&traces[l], &scalar, 2);
        }
    }

    fn inverter_lane(load: f64) -> (Circuit, usize) {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource(vdd, Circuit::GND, 1.0);
        let sin = c.vsource(inp, Circuit::GND, 0.0);
        let nmos = Arc::new(SiliconMosModel::new(SiliconMosParams::nmos_45()));
        let pmos = Arc::new(SiliconMosModel::new(SiliconMosParams::pmos_45()));
        c.fet(out, inp, Circuit::GND, nmos);
        c.fet(out, inp, vdd, pmos);
        c.capacitor(out, Circuit::GND, load);
        (c, sin)
    }

    #[test]
    fn fet_lanes_match_scalar_bitwise_with_shared_op() {
        // The characterization pattern: one DC op per edge direction,
        // shared across every load lane.
        let wave = Waveform::ramp(0.0, 1.0, 2.0e-11, 2.0e-11);
        let loads = [0.5e-15, 2.0e-15, 8.0e-15, 30.0e-15];
        let (c0, s0) = inverter_lane(loads[0]);
        let mut at_t0 = c0.clone();
        at_t0.set_vsource(s0, wave.eval(0.0));
        let op = DcSolver::new().solve(&at_t0).unwrap();
        let lanes: Vec<BatchLane> = loads
            .iter()
            .map(|&ld| {
                let (c, s) = inverter_lane(ld);
                BatchLane::new(c)
                    .drive(s, wave.clone())
                    .with_initial_state(&op)
            })
            .collect();
        let solver = BatchTranSolver::new(1.0e-12, 5.0e-10).with_step_clamp(0.5);
        let (res, traces) = run_collect(&solver, &lanes);
        for (l, &ld) in loads.iter().enumerate() {
            res[l].as_ref().expect("lane ok");
            let (c, s) = inverter_lane(ld);
            let scalar = TranSolver::new(1.0e-12, 5.0e-10)
                .with_step_clamp(0.5)
                .with_initial_state(&op)
                .drive(s, wave.clone())
                .run(&c)
                .unwrap();
            assert_trace_matches(&traces[l], &scalar, 3);
        }
    }

    #[test]
    fn per_lane_drives_match_scalar() {
        // Lanes differing in *waveform*, not element values (the DFF
        // speculative-bisection pattern).
        let offsets = [0.5e-4, 1.0e-4, 1.5e-4];
        let lanes: Vec<BatchLane> = offsets
            .iter()
            .map(|&off| {
                let wave = Waveform::ramp(0.0, 1.0, off, 1.0e-4);
                let (c, s) = rc_lane(1.0e-6);
                BatchLane::new(c).drive(s, wave)
            })
            .collect();
        let solver = BatchTranSolver::new(1.0e-5, 1.0e-3);
        let (res, traces) = run_collect(&solver, &lanes);
        for (l, &off) in offsets.iter().enumerate() {
            res[l].as_ref().expect("lane ok");
            let wave = Waveform::ramp(0.0, 1.0, off, 1.0e-4);
            let (c, s) = rc_lane(1.0e-6);
            let scalar = TranSolver::new(1.0e-5, 1.0e-3)
                .drive(s, wave)
                .run(&c)
                .unwrap();
            assert_trace_matches(&traces[l], &scalar, 2);
        }
    }

    #[test]
    fn retired_lane_leaves_others_bit_identical() {
        let wave = Waveform::ramp(0.0, 1.0, 1.0e-4, 2.0e-4);
        let caps = [0.3e-6, 1.0e-6];
        let lanes: Vec<BatchLane> = caps
            .iter()
            .map(|&cap| {
                let (c, s) = rc_lane(cap);
                BatchLane::new(c).drive(s, wave.clone())
            })
            .collect();
        let solver = BatchTranSolver::new(1.0e-5, 2.0e-3);
        let mut survivor: Vec<(f64, Vec<f64>)> = Vec::new();
        let res = solver.run(&lanes, |l, t, state| {
            if l == 0 {
                // Retire lane 0 after a handful of steps.
                return t < 4.5e-5;
            }
            survivor.push((t, state.to_vec()));
            true
        });
        res[0].as_ref().expect("retired lane reports ok");
        res[1].as_ref().expect("survivor ok");
        let (c, s) = rc_lane(caps[1]);
        let scalar = TranSolver::new(1.0e-5, 2.0e-3)
            .drive(s, wave.clone())
            .run(&c)
            .unwrap();
        assert_trace_matches(&survivor, &scalar, 2);
    }

    #[test]
    #[should_panic(expected = "differs structurally")]
    fn structural_mismatch_is_rejected() {
        let wave = Waveform::ramp(0.0, 1.0, 1.0e-4, 2.0e-4);
        let (c0, s0) = rc_lane(1.0e-6);
        let mut c1 = Circuit::new();
        let a = c1.node("a");
        let out = c1.node("out");
        let s1 = c1.vsource(a, Circuit::GND, 0.0);
        c1.capacitor(a, out, 1.0e-6); // capacitor where lane 0 has a resistor
        c1.resistor(out, Circuit::GND, 1.0e3);
        let lanes = vec![
            BatchLane::new(c0).drive(s0, wave.clone()),
            BatchLane::new(c1).drive(s1, wave.clone()),
        ];
        let _ = BatchTranSolver::new(1.0e-5, 2.0e-3).run(&lanes, |_, _, _| true);
    }
}
