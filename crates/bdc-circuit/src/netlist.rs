//! Circuit netlist representation (modified nodal analysis form).

use std::sync::Arc;

use bdc_device::DeviceModel;

use crate::error::CircuitError;

/// Identifier of a circuit node. Node 0 is always ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Raw index (0 = ground).
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs a node id from a raw index (0 = ground). Only
    /// meaningful for indices obtained from the same circuit.
    pub fn from_index(index: usize) -> NodeId {
        NodeId(index)
    }
}

/// One circuit element.
#[derive(Debug, Clone)]
pub enum Element {
    /// Linear resistor between `a` and `b`.
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance (Ω), strictly positive.
        ohms: f64,
    },
    /// Linear capacitor between `a` and `b` (open in DC).
    Capacitor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance (F), non-negative.
        farads: f64,
    },
    /// Independent voltage source; contributes one MNA branch unknown.
    VSource {
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// DC value (V); transient analysis may override per time step.
        volts: f64,
    },
    /// A FET bound to a compact device model.
    Fet {
        /// Drain terminal.
        d: NodeId,
        /// Gate terminal.
        g: NodeId,
        /// Source terminal.
        s: NodeId,
        /// Compact model evaluated for I_DS(V_GS, V_DS).
        model: Arc<dyn DeviceModel>,
    },
}

/// A flat transistor-level circuit.
///
/// Build with the fluent `node` / `resistor` / `capacitor` / `vsource` /
/// `fet` methods, then hand it to [`crate::DcSolver`] or
/// [`crate::TranSolver`].
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    names: Vec<String>,
    elements: Vec<Element>,
}

impl Circuit {
    /// The ground node, implicitly present in every circuit.
    pub const GND: NodeId = NodeId(0);

    /// Creates an empty circuit (containing only ground).
    pub fn new() -> Self {
        Circuit {
            names: vec!["gnd".to_string()],
            elements: Vec::new(),
        }
    }

    /// Creates (or finds, by name) a node.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return NodeId(i);
        }
        self.names.push(name.to_string());
        NodeId(self.names.len() - 1)
    }

    /// Name of a node.
    ///
    /// # Panics
    /// Panics if the id does not belong to this circuit.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.names[id.0]
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// The elements in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Adds a resistor.
    ///
    /// # Panics
    /// Panics if `ohms` is not finite and strictly positive.
    pub fn resistor(&mut self, a: NodeId, b: NodeId, ohms: f64) -> &mut Self {
        assert!(
            ohms.is_finite() && ohms > 0.0,
            "resistance must be positive"
        );
        self.check(a);
        self.check(b);
        self.elements.push(Element::Resistor { a, b, ohms });
        self
    }

    /// Adds a capacitor.
    ///
    /// # Panics
    /// Panics if `farads` is not finite and non-negative.
    pub fn capacitor(&mut self, a: NodeId, b: NodeId, farads: f64) -> &mut Self {
        assert!(
            farads.is_finite() && farads >= 0.0,
            "capacitance must be non-negative"
        );
        self.check(a);
        self.check(b);
        self.elements.push(Element::Capacitor { a, b, farads });
        self
    }

    /// Adds an independent voltage source and returns its source index
    /// (usable with [`crate::TranSolver::drive`] and
    /// [`Circuit::set_vsource`]).
    ///
    /// # Panics
    /// Panics if `volts` is not finite.
    pub fn vsource(&mut self, pos: NodeId, neg: NodeId, volts: f64) -> usize {
        assert!(volts.is_finite(), "source voltage must be finite");
        self.check(pos);
        self.check(neg);
        self.elements.push(Element::VSource { pos, neg, volts });
        self.vsource_count() - 1
    }

    /// Adds a FET.
    pub fn fet(
        &mut self,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        model: Arc<dyn DeviceModel>,
    ) -> &mut Self {
        self.check(d);
        self.check(g);
        self.check(s);
        self.elements.push(Element::Fet { d, g, s, model });
        self
    }

    /// Changes the DC value of the `idx`-th voltage source (insertion order).
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn set_vsource(&mut self, idx: usize, volts: f64) {
        let mut seen = 0;
        for e in &mut self.elements {
            if let Element::VSource { volts: v, .. } = e {
                if seen == idx {
                    *v = volts;
                    return;
                }
                seen += 1;
            }
        }
        panic!("voltage source index {idx} out of range ({seen} sources)");
    }

    /// Number of voltage sources.
    pub fn vsource_count(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, Element::VSource { .. }))
            .count()
    }

    /// Total MNA unknowns: node voltages (minus ground) + source branches.
    pub fn unknowns(&self) -> usize {
        (self.node_count() - 1) + self.vsource_count()
    }

    /// Validates that every node referenced by elements exists (useful after
    /// programmatic construction).
    ///
    /// # Errors
    /// Returns [`CircuitError::UnknownNode`] for an out-of-range reference.
    pub fn validate(&self) -> Result<(), CircuitError> {
        let n = self.node_count();
        for e in &self.elements {
            let ids: Vec<usize> = match e {
                Element::Resistor { a, b, .. } | Element::Capacitor { a, b, .. } => {
                    vec![a.0, b.0]
                }
                Element::VSource { pos, neg, .. } => vec![pos.0, neg.0],
                Element::Fet { d, g, s, .. } => vec![d.0, g.0, s.0],
            };
            for id in ids {
                if id >= n {
                    return Err(CircuitError::UnknownNode(id));
                }
            }
        }
        Ok(())
    }

    fn check(&self, id: NodeId) {
        assert!(id.0 < self.node_count(), "node id {} out of range", id.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_is_idempotent_by_name() {
        let mut c = Circuit::new();
        let a = c.node("x");
        let b = c.node("x");
        assert_eq!(a, b);
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.node_name(a), "x");
    }

    #[test]
    fn unknown_count_includes_branches() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource(a, Circuit::GND, 1.0);
        c.resistor(a, b, 10.0);
        c.resistor(b, Circuit::GND, 10.0);
        assert_eq!(c.unknowns(), 3); // two node voltages + one branch current
        assert!(c.validate().is_ok());
    }

    #[test]
    fn set_vsource_by_index() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        let s0 = c.vsource(a, Circuit::GND, 1.0);
        let s1 = c.vsource(b, Circuit::GND, 2.0);
        assert_eq!((s0, s1), (0, 1));
        c.set_vsource(1, 7.0);
        let vals: Vec<f64> = c
            .elements()
            .iter()
            .filter_map(|e| match e {
                Element::VSource { volts, .. } => Some(*volts),
                _ => None,
            })
            .collect();
        assert_eq!(vals, vec![1.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "resistance must be positive")]
    fn rejects_bad_resistor() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor(a, Circuit::GND, 0.0);
    }
}
