//! Error type for circuit construction and simulation.

use std::fmt;

/// Errors raised by the circuit simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// Newton–Raphson failed to converge after all fallbacks.
    NoConvergence {
        /// Worst KCL residual (A) at the last iterate.
        residual: f64,
        /// Iterations attempted.
        iterations: usize,
    },
    /// The MNA matrix was singular (e.g. a floating node with no DC path).
    SingularMatrix {
        /// Pivot column at which elimination failed.
        pivot: usize,
    },
    /// A node id did not belong to the circuit.
    UnknownNode(usize),
    /// An element parameter was invalid (negative resistance, NaN, …).
    InvalidElement(String),
    /// Transient setup was invalid (non-positive step or stop time).
    InvalidTimeAxis,
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::NoConvergence { residual, iterations } => write!(
                f,
                "newton-raphson did not converge after {iterations} iterations (residual {residual:.3e} A)"
            ),
            CircuitError::SingularMatrix { pivot } => {
                write!(f, "singular MNA matrix at pivot {pivot} (floating node?)")
            }
            CircuitError::UnknownNode(n) => write!(f, "node id {n} is not part of this circuit"),
            CircuitError::InvalidElement(msg) => write!(f, "invalid element: {msg}"),
            CircuitError::InvalidTimeAxis => write!(f, "transient step and stop must be positive"),
        }
    }
}

impl std::error::Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CircuitError::NoConvergence {
            residual: 1.0e-3,
            iterations: 200,
        };
        let s = e.to_string();
        assert!(s.contains("200") && s.contains("1.000e-3"));
        assert!(!format!("{e:?}").is_empty());
    }
}
