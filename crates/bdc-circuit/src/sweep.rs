//! DC transfer sweeps with solution continuation.

use crate::dc::{DcSolver, Operating};
use crate::error::CircuitError;
use crate::netlist::{Circuit, NodeId};

/// One sweep point: the swept source value and the full operating point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Value the swept source was set to (V).
    pub input: f64,
    /// The converged DC solution at that input.
    pub op: Operating,
}

/// Sweeps voltage source `src_idx` from `start` to `stop` over `n` points,
/// seeding each Newton solve with the previous solution (continuation).
///
/// Returns one [`SweepPoint`] per step.
///
/// # Errors
/// Propagates the first solver failure.
///
/// # Panics
/// Panics if `n < 2`.
pub fn dc_sweep(
    circuit: &Circuit,
    src_idx: usize,
    start: f64,
    stop: f64,
    n: usize,
) -> Result<Vec<SweepPoint>, CircuitError> {
    assert!(n >= 2, "a sweep needs at least two points");
    let mut work = circuit.clone();
    let mut out = Vec::with_capacity(n);
    let mut seed: Option<Vec<f64>> = None;
    for i in 0..n {
        let t = i as f64 / (n - 1) as f64;
        let vin = start + t * (stop - start);
        work.set_vsource(src_idx, vin);
        let mut solver = DcSolver::new();
        if let Some(s) = seed.take() {
            solver = solver.with_initial(s);
        }
        let op = solver.solve(&work)?;
        seed = Some(op.node_voltages().to_vec());
        out.push(SweepPoint { input: vin, op });
    }
    Ok(out)
}

/// Extracts `(input, v(node))` pairs from a sweep result.
pub fn sweep_voltage(points: &[SweepPoint], node: NodeId) -> Vec<(f64, f64)> {
    points
        .iter()
        .map(|p| (p.input, p.op.voltage(node)))
        .collect()
}

/// Extracts `(input, i_source(idx))` pairs from a sweep result.
pub fn sweep_current(points: &[SweepPoint], src_idx: usize) -> Vec<(f64, f64)> {
    points
        .iter()
        .map(|p| (p.input, p.op.source_current(src_idx)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Circuit;

    #[test]
    fn sweep_tracks_divider_linearly() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let m = c.node("m");
        let s = c.vsource(a, Circuit::GND, 0.0);
        c.resistor(a, m, 1.0e3);
        c.resistor(m, Circuit::GND, 1.0e3);
        let pts = dc_sweep(&c, s, 0.0, 10.0, 11).unwrap();
        assert_eq!(pts.len(), 11);
        for p in &pts {
            assert!((p.op.voltage(m) - p.input / 2.0).abs() < 1e-8);
        }
        let curve = sweep_voltage(&pts, m);
        assert_eq!(curve.len(), 11);
        assert!((curve[10].1 - 5.0).abs() < 1e-8);
    }

    #[test]
    fn sweep_reports_source_current() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let s = c.vsource(a, Circuit::GND, 0.0);
        c.resistor(a, Circuit::GND, 100.0);
        let pts = dc_sweep(&c, s, 0.0, 1.0, 3).unwrap();
        let i = sweep_current(&pts, s);
        // Source current at +1 V into 100 Ω is -10 mA by our convention
        // (current flows out of the + terminal through the external circuit).
        assert!((i[2].1.abs() - 0.01).abs() < 1e-9);
    }
}
