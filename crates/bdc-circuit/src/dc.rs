//! Newton–Raphson DC operating-point solver.
//!
//! Unknown vector layout: `x = [v_1 … v_{n-1}, i_src0 … i_srcK]` (ground is
//! eliminated). The residual is KCL at every non-ground node plus the branch
//! voltage equation of every source. Robustness measures:
//!
//! * per-iteration voltage step damping (configurable clamp);
//! * a `gmin` conductance from every node to ground, swept down to its final
//!   value (gmin stepping) if plain iteration fails;
//! * convergence on both residual current and voltage delta.

use crate::error::CircuitError;
use crate::linalg::DenseMatrix;
use crate::netlist::{Circuit, Element, NodeId};

/// A converged DC solution.
#[derive(Debug, Clone)]
pub struct Operating {
    voltages: Vec<f64>,
    branch_currents: Vec<f64>,
}

impl Operating {
    /// Node voltage (V). Ground reads 0.
    pub fn voltage(&self, node: NodeId) -> f64 {
        if node.index() == 0 {
            0.0
        } else {
            self.voltages[node.index() - 1]
        }
    }

    /// Current through the `idx`-th voltage source (A), flowing from its
    /// positive terminal through the source to the negative terminal.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn source_current(&self, idx: usize) -> f64 {
        self.branch_currents[idx]
    }

    /// All node voltages (excluding ground), in node order.
    pub fn node_voltages(&self) -> &[f64] {
        &self.voltages
    }

    /// All source branch currents, in source order.
    pub fn branch_currents(&self) -> &[f64] {
        &self.branch_currents
    }
}

/// Configurable Newton–Raphson DC solver.
#[derive(Debug, Clone)]
pub struct DcSolver {
    /// Maximum NR iterations per gmin step.
    pub max_iterations: usize,
    /// Convergence threshold on the KCL residual (A).
    pub abs_tol: f64,
    /// Convergence threshold on voltage updates (V).
    pub v_tol: f64,
    /// Largest allowed voltage change per iteration (V).
    pub step_clamp: f64,
    /// Final gmin conductance to ground (S).
    pub gmin: f64,
    /// Initial guess for node voltages; zeros if `None`.
    pub initial: Option<Vec<f64>>,
}

impl Default for DcSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl DcSolver {
    /// A solver with defaults suitable for both 1 V silicon and ±20 V
    /// organic cells.
    pub fn new() -> Self {
        DcSolver {
            max_iterations: 200,
            abs_tol: 1.0e-12,
            v_tol: 1.0e-9,
            step_clamp: 2.0,
            gmin: 1.0e-12,
            initial: None,
        }
    }

    /// Uses `voltages` (per non-ground node, in node order) as the NR seed —
    /// the continuation trick that makes DC sweeps fast and monotone.
    pub fn with_initial(mut self, voltages: Vec<f64>) -> Self {
        self.initial = Some(voltages);
        self
    }

    /// Solves the DC operating point.
    ///
    /// # Errors
    /// [`CircuitError::NoConvergence`] if NR fails even with gmin stepping;
    /// [`CircuitError::SingularMatrix`] for structurally singular circuits.
    pub fn solve(&self, circuit: &Circuit) -> Result<Operating, CircuitError> {
        circuit.validate()?;
        let nv = circuit.node_count() - 1;
        let ns = circuit.vsource_count();
        let n = nv + ns;
        if n == 0 {
            return Ok(Operating {
                voltages: vec![],
                branch_currents: vec![],
            });
        }
        let mut x = vec![0.0; n];
        if let Some(init) = &self.initial {
            let k = init.len().min(nv);
            x[..k].copy_from_slice(&init[..k]);
        }

        // Plain attempt at final gmin, then gmin stepping from 1e-3 down.
        if let Ok(()) = self.newton(circuit, &mut x, self.gmin) {
            return Ok(self.package(circuit, x));
        }
        let mut x2 = vec![0.0; n];
        let mut g = 1.0e-3;
        while g >= self.gmin {
            self.newton(circuit, &mut x2, g).map_err(|e| match e {
                CircuitError::NoConvergence {
                    residual,
                    iterations,
                } => CircuitError::NoConvergence {
                    residual,
                    iterations,
                },
                other => other,
            })?;
            g /= 10.0;
        }
        // Final polish at exact gmin.
        self.newton(circuit, &mut x2, self.gmin)?;
        Ok(self.package(circuit, x2))
    }

    fn package(&self, circuit: &Circuit, x: Vec<f64>) -> Operating {
        let nv = circuit.node_count() - 1;
        Operating {
            voltages: x[..nv].to_vec(),
            branch_currents: x[nv..].to_vec(),
        }
    }

    /// One NR loop at a fixed gmin. On success `x` holds the solution.
    fn newton(&self, circuit: &Circuit, x: &mut [f64], gmin: f64) -> Result<(), CircuitError> {
        let nv = circuit.node_count() - 1;
        let n = x.len();
        let mut jac = DenseMatrix::zeros(n, n);
        let mut f = vec![0.0; n];
        for iter in 0..self.max_iterations {
            jac.clear();
            f.fill(0.0);
            stamp(circuit, x, gmin, &mut jac, &mut f);
            let res = f.iter().take(nv).fold(0.0f64, |m, v| m.max(v.abs()));

            // Solve J·dx = -f. The Jacobian is re-stamped next iteration,
            // so factor it in place instead of solving on a clone.
            let mut rhs: Vec<f64> = f.iter().map(|v| -v).collect();
            let pivots = jac.lu_factor_in_place()?;
            jac.lu_solve(&pivots, &mut rhs);
            let mut dv_max = 0.0f64;
            for (i, xi) in x.iter_mut().enumerate() {
                let mut d = rhs[i];
                if i < nv {
                    d = d.clamp(-self.step_clamp, self.step_clamp);
                    dv_max = dv_max.max(d.abs());
                }
                *xi += d;
            }
            if res < self.abs_tol && dv_max < self.v_tol && iter > 0 {
                return Ok(());
            }
            // Also accept pure voltage convergence with a loose residual:
            // nanoamp-scale circuits (organic) have tiny absolute currents.
            if dv_max < self.v_tol && res < 1.0e-9 && iter > 1 {
                return Ok(());
            }
        }
        // Final residual check.
        jac.clear();
        f.fill(0.0);
        stamp(circuit, x, gmin, &mut jac, &mut f);
        let res = f.iter().take(nv).fold(0.0f64, |m, v| m.max(v.abs()));
        if res < 1.0e-9 {
            return Ok(());
        }
        Err(CircuitError::NoConvergence {
            residual: res,
            iterations: self.max_iterations,
        })
    }
}

/// Stamps the Jacobian and residual for the current iterate `x`.
///
/// Capacitors are open in DC and contribute nothing.
fn stamp(circuit: &Circuit, x: &[f64], gmin: f64, jac: &mut DenseMatrix, f: &mut [f64]) {
    let nv = circuit.node_count() - 1;
    let v = |id: NodeId| -> f64 {
        if id.index() == 0 {
            0.0
        } else {
            x[id.index() - 1]
        }
    };
    // Row/col index of a node, or None for ground.
    let ix = |id: NodeId| -> Option<usize> { id.index().checked_sub(1) };

    // gmin to ground at every node.
    for i in 0..nv {
        jac.add(i, i, gmin);
        f[i] += gmin * x[i];
    }

    let mut src_idx = 0;
    for e in circuit.elements() {
        match e {
            Element::Resistor { a, b, ohms } => {
                let g = 1.0 / ohms;
                let (va, vb) = (v(*a), v(*b));
                let i_ab = g * (va - vb);
                if let Some(ra) = ix(*a) {
                    f[ra] += i_ab;
                    jac.add(ra, ra, g);
                    if let Some(rb) = ix(*b) {
                        jac.add(ra, rb, -g);
                    }
                }
                if let Some(rb) = ix(*b) {
                    f[rb] -= i_ab;
                    jac.add(rb, rb, g);
                    if let Some(ra) = ix(*a) {
                        jac.add(rb, ra, -g);
                    }
                }
            }
            Element::Capacitor { .. } => {}
            Element::VSource { pos, neg, volts } => {
                let row = nv + src_idx;
                let i_br = x[row];
                // Branch equation: v_pos - v_neg - V = 0.
                f[row] = v(*pos) - v(*neg) - volts;
                if let Some(rp) = ix(*pos) {
                    jac.add(row, rp, 1.0);
                    f[rp] += i_br;
                    jac.add(rp, row, 1.0);
                }
                if let Some(rn) = ix(*neg) {
                    jac.add(row, rn, -1.0);
                    f[rn] -= i_br;
                    jac.add(rn, row, -1.0);
                }
                src_idx += 1;
            }
            Element::Fet { d, g, s, model } => {
                stamp_fet(x, *d, *g, *s, model.as_ref(), jac, f);
            }
        }
    }
}

/// Stamps one FET's linearized model — the only nonlinear (per-iteration)
/// stamp in the system. The transient solver calls this directly so it can
/// re-assemble just the FETs each NR step while reusing the constant
/// resistor/source/companion stamps.
pub(crate) fn stamp_fet(
    x: &[f64],
    d: NodeId,
    g: NodeId,
    s: NodeId,
    model: &dyn bdc_device::DeviceModel,
    jac: &mut DenseMatrix,
    f: &mut [f64],
) {
    let v = |id: NodeId| -> f64 {
        if id.index() == 0 {
            0.0
        } else {
            x[id.index() - 1]
        }
    };
    let ix = |id: NodeId| -> Option<usize> { id.index().checked_sub(1) };
    let vgs = v(g) - v(s);
    let vds = v(d) - v(s);
    let ids = model.ids(vgs, vds);
    let gm = model.gm(vgs, vds);
    let gds = model.gds(vgs, vds);
    // Current flows d → s (positive ids).
    if let Some(rd) = ix(d) {
        f[rd] += ids;
        jac.add(rd, rd, gds);
        if let Some(rg) = ix(g) {
            jac.add(rd, rg, gm);
        }
        if let Some(rs) = ix(s) {
            jac.add(rd, rs, -(gm + gds));
        }
    }
    if let Some(rs) = ix(s) {
        f[rs] -= ids;
        jac.add(rs, rs, gm + gds);
        if let Some(rg) = ix(g) {
            jac.add(rs, rg, -gm);
        }
        if let Some(rd) = ix(d) {
            jac.add(rs, rd, -gds);
        }
    }
}

/// Stamps everything at once for the current iterate `x` — the reference
/// formulation the transient solver's split-stamp fast path is checked
/// against in tests.
#[cfg(test)]
pub(crate) fn stamp_static(
    circuit: &Circuit,
    x: &[f64],
    gmin: f64,
    jac: &mut DenseMatrix,
    f: &mut [f64],
) {
    stamp(circuit, x, gmin, jac, f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdc_device::{Level61Model, SiliconMosModel, SiliconMosParams, TftParams};
    use std::sync::Arc;

    #[test]
    fn divider_solves_exactly() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let m = c.node("m");
        c.vsource(a, Circuit::GND, 10.0);
        c.resistor(a, m, 1.0e3);
        c.resistor(m, Circuit::GND, 3.0e3);
        let op = DcSolver::new().solve(&c).unwrap();
        assert!((op.voltage(m) - 7.5).abs() < 1e-8);
        // Source supplies 2.5 mA; branch current convention: + terminal in.
        assert!((op.source_current(0).abs() - 2.5e-3).abs() < 1e-8);
    }

    #[test]
    fn empty_circuit_is_trivially_solved() {
        let c = Circuit::new();
        let op = DcSolver::new().solve(&c).unwrap();
        assert_eq!(op.node_voltages().len(), 0);
    }

    #[test]
    fn floating_node_is_singular_without_gmin_path() {
        // A capacitor-only node: gmin keeps this solvable, pinning it to 0 V.
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("float");
        c.vsource(a, Circuit::GND, 5.0);
        c.capacitor(a, b, 1.0e-12);
        let op = DcSolver::new().solve(&c).unwrap();
        assert!(op.voltage(b).abs() < 1e-6);
    }

    #[test]
    fn diode_connected_silicon_fet_biases() {
        // NMOS with gate tied to drain through Vdd and source grounded:
        // current must equal the model's prediction at the solved bias.
        let mut c = Circuit::new();
        let d = c.node("d");
        c.vsource(d, Circuit::GND, 1.0);
        let model = Arc::new(SiliconMosModel::new(SiliconMosParams::nmos_45()));
        c.fet(d, d, Circuit::GND, model.clone());
        let op = DcSolver::new().solve(&c).unwrap();
        use bdc_device::DeviceModel;
        let expect = model.ids(1.0, 1.0);
        assert!((op.source_current(0).abs() - expect).abs() / expect < 1e-6);
    }

    #[test]
    fn organic_diode_load_inverter_output_high_is_degraded() {
        // Diode-load p-type inverter (paper Fig 5a): with input low the
        // output cannot reach VDD — the ratioed-logic weakness the paper
        // quantifies in Fig 6.
        let vdd = 15.0;
        let mut c = Circuit::new();
        let n_vdd = c.node("vdd");
        let n_in = c.node("in");
        let n_out = c.node("out");
        c.vsource(n_vdd, Circuit::GND, vdd);
        c.vsource(n_in, Circuit::GND, 0.0);
        let drive = Arc::new(Level61Model::new(TftParams::pentacene()));
        let load = Arc::new(Level61Model::new(TftParams::pentacene_sized(
            500.0e-6, 80.0e-6,
        )));
        // Drive: source at VDD, gate at IN, drain at OUT (p-type pulls up).
        c.fet(n_out, n_in, n_vdd, drive);
        // Load: diode-connected p-type pulling down to GND.
        c.fet(Circuit::GND, Circuit::GND, n_out, load);
        let op = DcSolver::new().solve(&c).unwrap();
        let vout = op.voltage(n_out);
        assert!(
            vout > 0.5 * vdd,
            "output-high {vout:.2} V should be well above mid-rail"
        );
        assert!(
            vout < 0.99 * vdd,
            "diode load must degrade V_OH below VDD, got {vout:.2}"
        );
    }
}
