//! Waveform and transfer-curve measurements.
//!
//! Implements the DC metrics of the paper's §4.3.1: switching threshold
//! `V_M` from the mirrored-VTC intersect, maximum gain from the steepest
//! slope, and noise margins — both the textbook unity-gain criterion
//! (reported separately as NMH / NML, like the tables in Figures 6d and 7d)
//! and Hauser's maximum-equal-criterion (MEC) single figure.

/// A voltage transfer characteristic: monotone-decreasing `(vin, vout)`.
#[derive(Debug, Clone, PartialEq)]
pub struct VtcCurve {
    points: Vec<(f64, f64)>,
}

/// Noise margins extracted from a VTC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseMargins {
    /// Input-low limit (unity-gain point), V.
    pub vil: f64,
    /// Input-high limit (unity-gain point), V.
    pub vih: f64,
    /// Output-high level, V.
    pub voh: f64,
    /// Output-low level, V.
    pub vol: f64,
    /// High noise margin `V_OH − V_IH`, V.
    pub nmh: f64,
    /// Low noise margin `V_IL − V_OL`, V.
    pub nml: f64,
}

/// DC summary of an inverter, matching the rows of the paper's Fig 6(d)/7(d).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InverterDc {
    /// Switching threshold `V_M` (mirror intersect), V.
    pub vm: f64,
    /// Peak small-signal gain |dVout/dVin|.
    pub max_gain: f64,
    /// Unity-gain noise margins.
    pub margins: NoiseMargins,
}

impl VtcCurve {
    /// Wraps a sampled VTC.
    ///
    /// # Panics
    /// Panics if fewer than 4 points are supplied or inputs are not strictly
    /// increasing.
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(points.len() >= 4, "VTC needs at least 4 points");
        assert!(
            points.windows(2).all(|w| w[1].0 > w[0].0),
            "VTC inputs must be strictly increasing"
        );
        VtcCurve { points }
    }

    /// The raw samples.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Linear interpolation of `vout` at `vin` (clamped at the ends).
    pub fn vout(&self, vin: f64) -> f64 {
        let pts = &self.points;
        if vin <= pts[0].0 {
            return pts[0].1;
        }
        for w in pts.windows(2) {
            if vin <= w[1].0 {
                let f = (vin - w[0].0) / (w[1].0 - w[0].0);
                return w[0].1 + f * (w[1].1 - w[0].1);
            }
        }
        pts.last().unwrap().1
    }

    /// Switching threshold: the input where `vout == vin` (the intersect of
    /// the VTC with its mirror, as the paper extracts it).
    pub fn switching_threshold(&self) -> f64 {
        // Find sign change of (vout - vin), then bisect the segment.
        let g = |v: f64| self.vout(v) - v;
        let mut lo = self.points[0].0;
        let mut hi = self.points.last().unwrap().0;
        let mut prev = self.points[0];
        for &(vin, vout) in &self.points[1..] {
            if (prev.1 - prev.0) * (vout - vin) <= 0.0 {
                lo = prev.0;
                hi = vin;
                break;
            }
            prev = (vin, vout);
        }
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if g(lo) * g(mid) <= 0.0 {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Gain curve: `(vin, |dVout/dVin|)` by central differences.
    pub fn gain_curve(&self) -> Vec<(f64, f64)> {
        let pts = &self.points;
        (1..pts.len() - 1)
            .map(|i| {
                let g = (pts[i + 1].1 - pts[i - 1].1) / (pts[i + 1].0 - pts[i - 1].0);
                (pts[i].0, g.abs())
            })
            .collect()
    }

    /// Peak small-signal gain magnitude.
    pub fn max_gain(&self) -> f64 {
        self.gain_curve()
            .into_iter()
            .map(|(_, g)| g)
            .fold(0.0, f64::max)
    }

    /// Unity-gain noise margins: `V_IL` / `V_IH` at |gain| = 1, `V_OH` /
    /// `V_OL` at the sweep extremes.
    pub fn noise_margins(&self) -> NoiseMargins {
        let gains = self.gain_curve();
        let voh = self
            .points
            .first()
            .unwrap()
            .1
            .max(self.points.last().unwrap().1);
        let vol = self
            .points
            .first()
            .unwrap()
            .1
            .min(self.points.last().unwrap().1);
        // First crossing of gain above 1 from the left is V_IL; last crossing
        // back below 1 is V_IH. If gain never reaches 1 the margins are zero.
        let mut vil = self.points[0].0;
        let mut vih = self.points.last().unwrap().0;
        let mut found = false;
        for w in gains.windows(2) {
            let ((v0, g0), (v1, g1)) = (w[0], w[1]);
            if !found && g0 < 1.0 && g1 >= 1.0 {
                let f = (1.0 - g0) / (g1 - g0);
                vil = v0 + f * (v1 - v0);
                found = true;
            }
            if found && g0 >= 1.0 && g1 < 1.0 {
                let f = (g0 - 1.0) / (g0 - g1);
                vih = v0 + f * (v1 - v0);
            }
        }
        if !found {
            return NoiseMargins {
                vil: 0.0,
                vih: 0.0,
                voh,
                vol,
                nmh: 0.0,
                nml: 0.0,
            };
        }
        NoiseMargins {
            vil,
            vih,
            voh,
            vol,
            nmh: (voh - vih).max(0.0),
            nml: (vil - vol).max(0.0),
        }
    }

    /// Hauser's maximum-equal-criterion noise margin: the largest series
    /// noise `m` for which an inverter chain still has two self-consistent
    /// logic levels.
    ///
    /// Formally, the largest `m` such that there exists a low level `V0`
    /// with `V1 = f(V0 + m)` satisfying `f(V1 − m) ≤ V0` and
    /// `V1 > V0 + 2m` (the logic bands do not overlap).
    pub fn noise_margin_mec(&self) -> f64 {
        let lo_in = self.points[0].0;
        let hi_in = self.points.last().unwrap().0;
        let f = |v: f64| self.vout(v.clamp(lo_in, hi_in));
        let bistable = |m: f64| -> bool {
            let n = 200;
            (0..=n).any(|i| {
                let v0 = lo_in + (hi_in - lo_in) * i as f64 / n as f64;
                let v1 = f(v0 + m);
                v1 > v0 + 2.0 * m && f(v1 - m) <= v0
            })
        };
        if !bistable(0.0) {
            return 0.0;
        }
        let mut lo = 0.0;
        let mut hi = 0.5 * (hi_in - lo_in);
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if bistable(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Full DC summary.
    pub fn summarize(&self) -> InverterDc {
        InverterDc {
            vm: self.switching_threshold(),
            max_gain: self.max_gain(),
            margins: self.noise_margins(),
        }
    }
}

/// Time at which a waveform first crosses `level` moving in the direction
/// implied by its endpoints. Returns `None` if it never crosses.
pub fn crossing_time(waveform: &[(f64, f64)], level: f64) -> Option<f64> {
    for w in waveform.windows(2) {
        let ((t0, v0), (t1, v1)) = (w[0], w[1]);
        if (v0 - level) * (v1 - level) <= 0.0 && (v1 - v0).abs() > 1e-300 {
            let f = (level - v0) / (v1 - v0);
            if (0.0..=1.0).contains(&f) {
                return Some(t0 + f * (t1 - t0));
            }
        }
    }
    None
}

/// Measured 10–90 % (by default fractions) transition time between two
/// levels on a waveform section. Returns `None` when crossings are missing.
pub fn slew_time(
    waveform: &[(f64, f64)],
    v_from: f64,
    v_to: f64,
    frac_lo: f64,
    frac_hi: f64,
) -> Option<f64> {
    let lo = v_from + frac_lo * (v_to - v_from);
    let hi = v_from + frac_hi * (v_to - v_from);
    let t_lo = crossing_time(waveform, lo)?;
    let t_hi = crossing_time(waveform, hi)?;
    Some((t_hi - t_lo).abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An ideal-ish inverter VTC: tanh centred at vm with gain g, swinging
    /// vol..voh.
    fn tanh_vtc(vm: f64, gain: f64, vol: f64, voh: f64, n: usize, vmax: f64) -> VtcCurve {
        let mid = 0.5 * (voh + vol);
        let amp = 0.5 * (voh - vol);
        // Slope of a·tanh(k(vm−v)) at v=vm is a·k; choose k for target gain.
        let k = gain / amp;
        let pts = (0..n)
            .map(|i| {
                let v = vmax * i as f64 / (n - 1) as f64;
                (v, mid + amp * (k * (vm - v)).tanh())
            })
            .collect();
        VtcCurve::new(pts)
    }

    #[test]
    fn switching_threshold_found_at_center() {
        let vtc = tanh_vtc(7.7, 3.0, 0.0, 15.0, 301, 15.0);
        let vm = vtc.switching_threshold();
        // The vout=vin intersect is near (not exactly at) the tanh centre.
        assert!((vm - 7.7).abs() < 0.5, "vm = {vm}");
    }

    #[test]
    fn max_gain_matches_construction() {
        let vtc = tanh_vtc(7.5, 3.0, 0.0, 15.0, 601, 15.0);
        let g = vtc.max_gain();
        assert!((g - 3.0).abs() < 0.1, "gain = {g}");
    }

    #[test]
    fn noise_margins_positive_for_high_gain() {
        let vtc = tanh_vtc(7.5, 3.0, 0.0, 15.0, 601, 15.0);
        let nm = vtc.noise_margins();
        assert!(nm.nmh > 1.0 && nm.nml > 1.0, "{nm:?}");
        assert!(nm.vil < 7.5 && nm.vih > 7.5);
        // For this symmetric curve margins are nearly equal.
        assert!((nm.nmh - nm.nml).abs() < 0.5);
    }

    #[test]
    fn unity_gain_margins_vanish_for_weak_inverter() {
        // Gain < 1 everywhere: no regeneration, no noise margin.
        let vtc = tanh_vtc(7.5, 0.8, 2.0, 13.0, 401, 15.0);
        let nm = vtc.noise_margins();
        assert_eq!((nm.nmh, nm.nml), (0.0, 0.0));
        assert_eq!(vtc.noise_margin_mec(), 0.0);
    }

    #[test]
    fn mec_margin_below_unity_gain_margins() {
        let vtc = tanh_vtc(7.5, 3.0, 0.0, 15.0, 601, 15.0);
        let mec = vtc.noise_margin_mec();
        let nm = vtc.noise_margins();
        assert!(mec > 0.5);
        assert!(mec <= nm.nmh.max(nm.nml) + 1e-9);
    }

    #[test]
    fn crossing_and_slew_times() {
        let wf: Vec<(f64, f64)> = (0..=100).map(|i| (i as f64, i as f64 * 0.1)).collect();
        let t = crossing_time(&wf, 5.0).unwrap();
        assert!((t - 50.0).abs() < 1e-9);
        let s = slew_time(&wf, 0.0, 10.0, 0.1, 0.9).unwrap();
        assert!((s - 80.0).abs() < 1e-9);
        assert_eq!(crossing_time(&wf, 99.0), None);
    }

    #[test]
    fn summarize_bundles_metrics() {
        let vtc = tanh_vtc(7.7, 3.0, 0.0, 15.0, 601, 15.0);
        let s = vtc.summarize();
        assert!((s.vm - 7.7).abs() < 0.5);
        assert!((s.max_gain - 3.0).abs() < 0.15);
        assert!(s.margins.nmh > 1.0);
    }
}
