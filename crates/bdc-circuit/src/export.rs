//! Circuit export: human-readable netlist listings and SPICE decks.
//!
//! [`describe`] prints a schematic-style element listing (used by the
//! Figure 5/9 binaries to reproduce the paper's schematic figures in text
//! form). [`write_spice`] emits a SPICE deck — device models become
//! `.model` cards with the parameters a level-1/level-61 user would
//! recognize — so cells can be cross-checked in an external simulator.

use std::fmt::Write as _;

use crate::netlist::{Circuit, Element, NodeId};

/// A human-readable element listing of a circuit.
pub fn describe(circuit: &Circuit) -> String {
    let mut s = String::new();
    let name = |n: NodeId| circuit.node_name(n).to_string();
    let _ = writeln!(s, "nodes: {}", circuit.node_count());
    let mut n_r = 0;
    let mut n_c = 0;
    let mut n_v = 0;
    let mut n_m = 0;
    for e in circuit.elements() {
        match e {
            Element::Resistor { a, b, ohms } => {
                n_r += 1;
                let _ = writeln!(
                    s,
                    "  R{n_r}  {} -- {}  {:.3e} ohm",
                    name(*a),
                    name(*b),
                    ohms
                );
            }
            Element::Capacitor { a, b, farads } => {
                n_c += 1;
                let _ = writeln!(
                    s,
                    "  C{n_c}  {} -- {}  {:.3e} F",
                    name(*a),
                    name(*b),
                    farads
                );
            }
            Element::VSource { pos, neg, volts } => {
                n_v += 1;
                let _ = writeln!(
                    s,
                    "  V{n_v}  {} -> {}  {:+.2} V",
                    name(*pos),
                    name(*neg),
                    volts
                );
            }
            Element::Fet {
                d,
                g,
                s: src,
                model,
            } => {
                n_m += 1;
                let pol = match model.polarity() {
                    bdc_device::Polarity::NType => "nfet",
                    bdc_device::Polarity::PType => "pfet",
                };
                let _ = writeln!(
                    s,
                    "  M{n_m}  d={} g={} s={}  {pol}  Cg={:.2e} F",
                    name(*d),
                    name(*g),
                    name(*src),
                    model.gate_capacitance()
                );
            }
        }
    }
    let _ = writeln!(s, "totals: {n_m} transistors, {n_r} R, {n_c} C, {n_v} V");
    s
}

/// Writes a SPICE deck for the circuit. Each distinct FET model becomes a
/// numbered `.model` card (the compact parameters are embedded as a
/// comment, since this crate's models extend the standard levels).
pub fn write_spice(circuit: &Circuit, title: &str) -> String {
    let mut s = String::new();
    let node = |n: NodeId| -> String {
        if n == Circuit::GND {
            "0".into()
        } else {
            circuit.node_name(n).replace([' ', '.'], "_")
        }
    };
    let _ = writeln!(s, "* {title}");
    let mut n_r = 0;
    let mut n_c = 0;
    let mut n_v = 0;
    let mut n_m = 0;
    let mut models: Vec<String> = Vec::new();
    for e in circuit.elements() {
        match e {
            Element::Resistor { a, b, ohms } => {
                n_r += 1;
                let _ = writeln!(s, "R{n_r} {} {} {ohms:.6e}", node(*a), node(*b));
            }
            Element::Capacitor { a, b, farads } => {
                n_c += 1;
                let _ = writeln!(s, "C{n_c} {} {} {farads:.6e}", node(*a), node(*b));
            }
            Element::VSource { pos, neg, volts } => {
                n_v += 1;
                let _ = writeln!(s, "V{n_v} {} {} DC {volts:.6}", node(*pos), node(*neg));
            }
            Element::Fet {
                d,
                g,
                s: src,
                model,
            } => {
                n_m += 1;
                let descr = format!("{model:?}");
                let idx = match models.iter().position(|m| *m == descr) {
                    Some(i) => i,
                    None => {
                        models.push(descr);
                        models.len() - 1
                    }
                };
                let _ = writeln!(
                    s,
                    "M{n_m} {} {} {} {} MOD{idx}",
                    node(*d),
                    node(*g),
                    node(*src),
                    node(*src) // bulk tied to source
                );
            }
        }
    }
    for (i, m) in models.iter().enumerate() {
        let pol = if m.contains("NType") { "nmos" } else { "pmos" };
        let _ = writeln!(s, ".model MOD{i} {pol} level=61");
        // Parameter provenance for reproducibility.
        for chunk in m.as_bytes().chunks(90) {
            let _ = writeln!(s, "* {}", String::from_utf8_lossy(chunk));
        }
    }
    let _ = writeln!(s, ".end");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdc_device::{Level61Model, TftParams};
    use std::sync::Arc;

    fn sample() -> Circuit {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource(vdd, Circuit::GND, 5.0);
        c.vsource(inp, Circuit::GND, 0.0);
        c.fet(
            out,
            inp,
            vdd,
            Arc::new(Level61Model::new(TftParams::pentacene())),
        );
        c.resistor(out, Circuit::GND, 1.0e6);
        c.capacitor(out, Circuit::GND, 1.0e-12);
        c
    }

    #[test]
    fn describe_lists_every_element() {
        let d = describe(&sample());
        assert!(d.contains("1 transistors, 1 R, 1 C, 2 V"), "{d}");
        assert!(d.contains("pfet"));
        assert!(d.contains("d=out g=in s=vdd"));
    }

    #[test]
    fn spice_deck_has_cards_and_end() {
        let deck = write_spice(&sample(), "pseudo test");
        assert!(deck.starts_with("* pseudo test"));
        assert!(deck.contains("M1 out in vdd vdd MOD0"));
        assert!(deck.contains(".model MOD0 pmos level=61"));
        assert!(deck.trim_end().ends_with(".end"));
        // Ground is node 0 in SPICE.
        assert!(deck.contains("R1 out 0"));
    }

    #[test]
    fn identical_models_share_a_model_card() {
        let mut c = sample();
        let out = c.node("out");
        let inp = c.node("in");
        c.fet(
            Circuit::GND,
            inp,
            out,
            Arc::new(Level61Model::new(TftParams::pentacene())),
        );
        let deck = write_spice(&c, "two fets");
        assert!(deck.contains("MOD0"));
        assert!(!deck.contains("MOD1"), "equal models must share a card");
    }
}
