//! Dense linear algebra for the MNA solver.
//!
//! Standard-cell circuits have at most a few dozen unknowns, so a dense LU
//! factorization with partial pivoting is both simple and fast.

use crate::error::CircuitError;

/// A dense row-major square-capable matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads entry (r, c).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Writes entry (r, c).
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Adds `v` into entry (r, c) — the natural operation for MNA stamps.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] += v;
    }

    /// Resets all entries to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Overwrites `self` with `other`, keeping the allocation. This is how
    /// the Newton loops restore the constant (resistor/source/companion)
    /// stamps each iteration instead of re-assembling them.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn copy_from(&mut self, other: &DenseMatrix) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data.copy_from_slice(&other.data);
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.mul_vec_into(x, &mut out);
        out
    }

    /// Matrix–vector product `A·x` into a caller-owned buffer (the Newton
    /// loops call this every iteration; no allocation).
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()` or `out.len() != self.rows()`.
    pub fn mul_vec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(out.len(), self.rows);
        for (r, o) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            *o = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
    }

    /// Factors `self` into `P·A = L·U` in place with partial pivoting,
    /// storing `L`'s multipliers below the diagonal and `U` on and above
    /// it. Returns the pivot interchange vector (`pivots[col]` is the row
    /// swapped into position `col` at step `col`). The factorization can
    /// then back several [`DenseMatrix::lu_solve`] calls, and — because the
    /// circuit topology never changes mid-transient — the matrix *structure*
    /// (zero pattern, pivot candidates) stays identical across Newton
    /// iterations, so nothing beyond the numeric sweep is redone.
    ///
    /// # Errors
    /// Returns [`CircuitError::SingularMatrix`] when a pivot underflows.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn lu_factor_in_place(&mut self) -> Result<Vec<usize>, CircuitError> {
        assert_eq!(self.rows, self.cols, "factor requires a square matrix");
        let n = self.rows;
        let mut pivots = Vec::with_capacity(n);
        for col in 0..n {
            let mut best = col;
            let mut best_abs = self.get(col, col).abs();
            for r in (col + 1)..n {
                let a = self.get(r, col).abs();
                if a > best_abs {
                    best = r;
                    best_abs = a;
                }
            }
            if best_abs < 1.0e-300 {
                return Err(CircuitError::SingularMatrix { pivot: col });
            }
            pivots.push(best);
            if best != col {
                for c in 0..n {
                    let tmp = self.get(col, c);
                    self.set(col, c, self.get(best, c));
                    self.set(best, c, tmp);
                }
            }
            let pivot = self.get(col, col);
            for r in (col + 1)..n {
                let factor = self.get(r, col) / pivot;
                self.set(r, col, factor);
                if factor == 0.0 {
                    continue;
                }
                for c in (col + 1)..n {
                    let v = self.get(r, c) - factor * self.get(col, c);
                    self.set(r, c, v);
                }
            }
        }
        Ok(pivots)
    }

    /// Solves `A·x = b` given the output of
    /// [`DenseMatrix::lu_factor_in_place`], returning `x` in `b`'s storage.
    ///
    /// # Panics
    /// Panics if `b` or `pivots` have the wrong length.
    pub fn lu_solve(&self, pivots: &[usize], b: &mut [f64]) {
        let n = self.rows;
        assert_eq!(b.len(), n);
        assert_eq!(pivots.len(), n);
        // Forward: apply the interchanges in factorization order, then the
        // stored multipliers column by column (exactly the update sequence
        // the elimination applied).
        for col in 0..n {
            b.swap(col, pivots[col]);
            let bc = b[col];
            if bc == 0.0 {
                continue;
            }
            for (r, br) in b.iter_mut().enumerate().take(n).skip(col + 1) {
                *br -= self.get(r, col) * bc;
            }
        }
        // Back substitution on U.
        for col in (0..n).rev() {
            let mut acc = b[col];
            for (c, &bc) in b.iter().enumerate().take(n).skip(col + 1) {
                acc -= self.get(col, c) * bc;
            }
            b[col] = acc / self.get(col, col);
        }
    }

    /// Solves `A·x = b` in place via LU with partial pivoting, destroying
    /// `self` and `b` and returning `x` in `b`'s storage.
    ///
    /// # Errors
    /// Returns [`CircuitError::SingularMatrix`] when a pivot underflows.
    ///
    /// # Panics
    /// Panics if the matrix is not square or `b` has the wrong length.
    pub fn solve_in_place(&mut self, b: &mut [f64]) -> Result<(), CircuitError> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows);
        let pivots = self.lu_factor_in_place()?;
        self.lu_solve(&pivots, b);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let mut a = DenseMatrix::zeros(3, 3);
        for i in 0..3 {
            a.set(i, i, 1.0);
        }
        let mut b = vec![1.0, 2.0, 3.0];
        a.solve_in_place(&mut b).unwrap();
        assert_eq!(b, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_system_requiring_pivoting() {
        // First pivot is zero; partial pivoting must rescue it.
        let mut a = DenseMatrix::zeros(2, 2);
        a.set(0, 0, 0.0);
        a.set(0, 1, 1.0);
        a.set(1, 0, 2.0);
        a.set(1, 1, 1.0);
        let mut b = vec![3.0, 5.0];
        a.solve_in_place(&mut b).unwrap();
        // x0 = 1, x1 = 3.
        assert!((b[0] - 1.0).abs() < 1e-12 && (b[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reports_singularity() {
        let mut a = DenseMatrix::zeros(2, 2);
        a.set(0, 0, 1.0);
        a.set(0, 1, 2.0);
        a.set(1, 0, 2.0);
        a.set(1, 1, 4.0);
        let mut b = vec![1.0, 2.0];
        assert!(matches!(
            a.solve_in_place(&mut b),
            Err(CircuitError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn factored_solve_matches_direct_solve_bitwise() {
        // The Newton loops factor once per iteration and replay pivots on
        // the RHS; the result must be exactly what the one-shot path gives.
        let mut a = DenseMatrix::zeros(5, 5);
        let mut v = 1.0f64;
        for r in 0..5 {
            for c in 0..5 {
                v = (v * 1.37 + 0.11).rem_euclid(7.0) - 3.5;
                a.set(r, c, v + if r == c { 8.0 } else { 0.0 });
            }
        }
        let b0 = vec![1.0, -2.0, 0.5, 3.25, -0.75];
        let mut direct = b0.clone();
        a.clone().solve_in_place(&mut direct).unwrap();
        let mut fac = a.clone();
        let piv = fac.lu_factor_in_place().unwrap();
        let mut replay = b0.clone();
        fac.lu_solve(&piv, &mut replay);
        assert_eq!(direct, replay);
        // And the factorization solves a second RHS without refactoring.
        let b1 = vec![0.0, 1.0, 0.0, -1.0, 2.0];
        let mut x1 = b1.clone();
        fac.lu_solve(&piv, &mut x1);
        let back = a.mul_vec(&x1);
        for (bi, xi) in b1.iter().zip(&back) {
            assert!((bi - xi).abs() < 1e-10);
        }
    }

    #[test]
    fn copy_from_and_mul_vec_into_reuse_buffers() {
        let mut a = DenseMatrix::zeros(3, 3);
        for i in 0..3 {
            a.set(i, i, (i + 1) as f64);
        }
        let mut b = DenseMatrix::zeros(3, 3);
        b.copy_from(&a);
        let mut out = vec![0.0; 3];
        b.mul_vec_into(&[1.0, 1.0, 1.0], &mut out);
        assert_eq!(out, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn mul_vec_matches_solution() {
        let mut a = DenseMatrix::zeros(4, 4);
        // A diagonally dominant random-ish matrix.
        let vals = [
            [10.0, 1.0, -2.0, 0.5],
            [2.0, 8.0, 1.0, -1.0],
            [-1.0, 0.0, 6.0, 2.0],
            [0.5, 1.0, 1.0, 9.0],
        ];
        for (r, row) in vals.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                a.set(r, c, v);
            }
        }
        let x_true = vec![1.0, -2.0, 3.0, 0.25];
        let mut b = a.mul_vec(&x_true);
        a.clone().solve_in_place(&mut b).unwrap();
        for (xi, ti) in b.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }
}
