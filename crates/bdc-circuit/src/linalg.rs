//! Dense linear algebra for the MNA solver.
//!
//! Standard-cell circuits have at most a few dozen unknowns, so a dense LU
//! factorization with partial pivoting is both simple and fast.

use crate::error::CircuitError;

/// A dense row-major square-capable matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads entry (r, c).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Writes entry (r, c).
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Adds `v` into entry (r, c) — the natural operation for MNA stamps.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] += v;
    }

    /// Resets all entries to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        (0..self.rows)
            .map(|r| {
                let row = &self.data[r * self.cols..(r + 1) * self.cols];
                row.iter().zip(x).map(|(a, b)| a * b).sum()
            })
            .collect()
    }

    /// Solves `A·x = b` in place via LU with partial pivoting, destroying
    /// `self` and `b` and returning `x` in `b`'s storage.
    ///
    /// # Errors
    /// Returns [`CircuitError::SingularMatrix`] when a pivot underflows.
    ///
    /// # Panics
    /// Panics if the matrix is not square or `b` has the wrong length.
    pub fn solve_in_place(&mut self, b: &mut [f64]) -> Result<(), CircuitError> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows);
        let n = self.rows;
        for col in 0..n {
            // Partial pivot.
            let mut best = col;
            let mut best_abs = self.get(col, col).abs();
            for r in (col + 1)..n {
                let a = self.get(r, col).abs();
                if a > best_abs {
                    best = r;
                    best_abs = a;
                }
            }
            if best_abs < 1.0e-300 {
                return Err(CircuitError::SingularMatrix { pivot: col });
            }
            if best != col {
                for c in 0..n {
                    let tmp = self.get(col, c);
                    self.set(col, c, self.get(best, c));
                    self.set(best, c, tmp);
                }
                b.swap(col, best);
            }
            let pivot = self.get(col, col);
            for r in (col + 1)..n {
                let factor = self.get(r, col) / pivot;
                if factor == 0.0 {
                    continue;
                }
                for c in col..n {
                    let v = self.get(r, c) - factor * self.get(col, c);
                    self.set(r, c, v);
                }
                b[r] -= factor * b[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = b[col];
            for (c, &bc) in b.iter().enumerate().take(n).skip(col + 1) {
                acc -= self.get(col, c) * bc;
            }
            b[col] = acc / self.get(col, col);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let mut a = DenseMatrix::zeros(3, 3);
        for i in 0..3 {
            a.set(i, i, 1.0);
        }
        let mut b = vec![1.0, 2.0, 3.0];
        a.solve_in_place(&mut b).unwrap();
        assert_eq!(b, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_system_requiring_pivoting() {
        // First pivot is zero; partial pivoting must rescue it.
        let mut a = DenseMatrix::zeros(2, 2);
        a.set(0, 0, 0.0);
        a.set(0, 1, 1.0);
        a.set(1, 0, 2.0);
        a.set(1, 1, 1.0);
        let mut b = vec![3.0, 5.0];
        a.solve_in_place(&mut b).unwrap();
        // x0 = 1, x1 = 3.
        assert!((b[0] - 1.0).abs() < 1e-12 && (b[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reports_singularity() {
        let mut a = DenseMatrix::zeros(2, 2);
        a.set(0, 0, 1.0);
        a.set(0, 1, 2.0);
        a.set(1, 0, 2.0);
        a.set(1, 1, 4.0);
        let mut b = vec![1.0, 2.0];
        assert!(matches!(
            a.solve_in_place(&mut b),
            Err(CircuitError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn mul_vec_matches_solution() {
        let mut a = DenseMatrix::zeros(4, 4);
        // A diagonally dominant random-ish matrix.
        let vals = [
            [10.0, 1.0, -2.0, 0.5],
            [2.0, 8.0, 1.0, -1.0],
            [-1.0, 0.0, 6.0, 2.0],
            [0.5, 1.0, 1.0, 9.0],
        ];
        for (r, row) in vals.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                a.set(r, c, v);
            }
        }
        let x_true = vec![1.0, -2.0, 3.0, 0.25];
        let mut b = a.mul_vec(&x_true);
        a.clone().solve_in_place(&mut b).unwrap();
        for (xi, ti) in b.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }
}
