//! Transient analysis with backward-Euler / trapezoidal companion models.
//!
//! The circuit topology never changes mid-transient, so everything linear —
//! gmin, resistors, source incidence, capacitor companion conductances — is
//! stamped into one constant base matrix before the time loop. Each Newton
//! iteration restores the base with a `memcpy`, adds only the FET
//! linearizations, and factors in place; nothing constant is re-assembled
//! and no per-iteration matrix clone is made.

use crate::dc::{stamp_fet, DcSolver, Operating};

use crate::error::CircuitError;
use crate::linalg::DenseMatrix;
use crate::netlist::{Circuit, Element, NodeId};

/// The gmin conductance tying every node to ground during transient NR.
pub(crate) const GMIN: f64 = 1.0e-12;

/// Integration method for the capacitor companion models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// First-order, L-stable — the robust default for stiff cell circuits.
    #[default]
    BackwardEuler,
    /// Second-order trapezoidal rule — more accurate per step on smooth
    /// waveforms (may ring on discontinuities, as in real SPICE).
    Trapezoidal,
}

/// Time-varying stimulus for a voltage source.
#[derive(Debug, Clone)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// Piecewise-linear `(time, value)` points; clamps outside the range.
    Pwl(Vec<(f64, f64)>),
}

impl Waveform {
    /// A single rising or falling ramp from `v0` to `v1` starting at
    /// `t_start`, completing over `t_ramp` seconds.
    pub fn ramp(v0: f64, v1: f64, t_start: f64, t_ramp: f64) -> Self {
        Waveform::Pwl(vec![(0.0, v0), (t_start, v0), (t_start + t_ramp, v1)])
    }

    /// Value at time `t`.
    pub fn eval(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pwl(pts) => {
                if pts.is_empty() {
                    return 0.0;
                }
                if t <= pts[0].0 {
                    return pts[0].1;
                }
                for w in pts.windows(2) {
                    let ((t0, v0), (t1, v1)) = (w[0], w[1]);
                    if t <= t1 {
                        if t1 - t0 < 1e-300 {
                            return v1;
                        }
                        let f = (t - t0) / (t1 - t0);
                        return v0 + f * (v1 - v0);
                    }
                }
                pts.last().unwrap().1
            }
        }
    }
}

/// Result of a transient run.
#[derive(Debug, Clone)]
pub struct TranResult {
    times: Vec<f64>,
    /// Per step, the non-ground node voltages.
    states: Vec<Vec<f64>>,
}

impl TranResult {
    /// The simulated time points (s).
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Waveform of one node as `(t, v)` pairs.
    pub fn node_waveform(&self, node: NodeId) -> Vec<(f64, f64)> {
        let idx = node.index();
        self.times
            .iter()
            .zip(&self.states)
            .map(|(t, s)| (*t, if idx == 0 { 0.0 } else { s[idx - 1] }))
            .collect()
    }

    /// Voltage of `node` at step `i`.
    pub fn voltage_at(&self, i: usize, node: NodeId) -> f64 {
        if node.index() == 0 {
            0.0
        } else {
            self.states[i][node.index() - 1]
        }
    }

    /// Number of stored steps.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when no steps were stored.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }
}

/// Fixed-step transient solver.
///
/// The initial condition is the DC operating point with all driven sources
/// at their `t = 0` values.
#[derive(Debug, Clone)]
pub struct TranSolver {
    tstep: f64,
    tstop: f64,
    drives: Vec<(usize, Waveform)>,
    /// NR iteration limit per time step.
    pub max_iterations: usize,
    /// Voltage convergence tolerance per step (V).
    pub v_tol: f64,
    /// Largest voltage change per NR iteration (V); steps that would grow
    /// the residual are additionally halved by the backtracking search.
    pub step_clamp: f64,
    /// Capacitor integration method.
    pub integrator: Integrator,
    /// Precomputed initial node voltages (skips the internal DC solve).
    initial_state: Option<Vec<f64>>,
}

impl TranSolver {
    /// Creates a solver with time step `tstep` and end time `tstop`.
    ///
    /// # Panics
    /// Panics if either is non-positive or non-finite.
    pub fn new(tstep: f64, tstop: f64) -> Self {
        assert!(tstep > 0.0 && tstep.is_finite(), "tstep must be positive");
        assert!(tstop > 0.0 && tstop.is_finite(), "tstop must be positive");
        TranSolver {
            tstep,
            tstop,
            drives: Vec::new(),
            max_iterations: 150,
            v_tol: 1.0e-7,
            step_clamp: 5.0,
            integrator: Integrator::default(),
            initial_state: None,
        }
    }

    /// Attaches a waveform to voltage source `src_idx`.
    pub fn drive(mut self, src_idx: usize, waveform: Waveform) -> Self {
        self.drives.push((src_idx, waveform));
        self
    }

    /// Sets the per-iteration voltage step clamp (useful for low-voltage
    /// circuits where the default 5 V allows oscillatory overshoot).
    pub fn with_step_clamp(mut self, clamp: f64) -> Self {
        assert!(clamp > 0.0, "step clamp must be positive");
        self.step_clamp = clamp;
        self
    }

    /// Selects the capacitor integration method.
    pub fn with_integrator(mut self, integrator: Integrator) -> Self {
        self.integrator = integrator;
        self
    }

    /// Seeds the transient with a precomputed DC operating point instead of
    /// solving one internally. The caller must have solved `op` for the
    /// same circuit with every driven source at its `t = 0` value; the
    /// result is then bit-identical to the solve-internally path. This is
    /// how cell characterization amortizes one DC solve per (gate, edge)
    /// across a whole slew × load grid — the load capacitor is open in DC,
    /// so the operating point does not depend on it.
    pub fn with_initial_state(mut self, op: &Operating) -> Self {
        self.initial_state = Some(op.node_voltages().to_vec());
        self
    }

    /// Runs the transient analysis.
    ///
    /// # Errors
    /// Propagates DC (initial condition) and per-step NR failures.
    pub fn run(&self, circuit: &Circuit) -> Result<TranResult, CircuitError> {
        let mut work = circuit.clone();
        // Initial condition: sources at t = 0.
        for (idx, w) in &self.drives {
            work.set_vsource(*idx, w.eval(0.0));
        }
        let nv = work.node_count() - 1;
        let ns = work.vsource_count();
        let n = nv + ns;
        let mut x = vec![0.0; n];
        match &self.initial_state {
            Some(v0) => {
                work.validate()?;
                let k = v0.len().min(nv);
                x[..k].copy_from_slice(&v0[..k]);
            }
            None => {
                let op0 = DcSolver::new().solve(&work)?;
                x[..nv].copy_from_slice(op0.node_voltages());
            }
        }

        let steps = (self.tstop / self.tstep).ceil() as usize;
        let mut times = Vec::with_capacity(steps + 1);
        let mut states = Vec::with_capacity(steps + 1);
        times.push(0.0);
        states.push(x[..nv].to_vec());

        let h = self.tstep;
        // Everything linear is stamped once, outside the time loop.
        let base = build_base(&work, n, nv, h, self.integrator);
        let mut scratch = Scratch::new(n);
        let mut c_step = vec![0.0; n];
        let mut prev = vec![0.0; nv];
        let mut x_save = vec![0.0; n];
        // Trapezoidal companion history: previous capacitor currents.
        let n_caps = work
            .elements()
            .iter()
            .filter(|e| matches!(e, Element::Capacitor { .. }))
            .count();
        let mut cap_hist = vec![0.0f64; n_caps];
        for k in 1..=steps {
            let t = k as f64 * h;
            for (idx, w) in &self.drives {
                work.set_vsource(*idx, w.eval(t));
            }
            prev.copy_from_slice(states.last().unwrap());
            // Per-step constants: source values and capacitor history terms
            // change once per step, never per NR iteration.
            build_step_consts(&work, &prev, &cap_hist, h, self.integrator, nv, &mut c_step);
            x_save.copy_from_slice(&x);
            match self.nr_solve_step(&work, &base, &c_step, &mut x, nv, &mut scratch) {
                Ok(()) => {
                    if self.integrator == Integrator::Trapezoidal {
                        update_cap_hist(&work, &x, &prev, h, &mut cap_hist);
                    }
                }
                Err(CircuitError::NoConvergence { residual, .. }) => {
                    // Local time-step cutting: retry the failed interval as
                    // 2^m sub-steps. The stiffer capacitor companions
                    // (g = C/h') regularize floating series-stack nodes that
                    // trap full-step NR in a limit cycle; every converging
                    // step is untouched.
                    x.copy_from_slice(&x_save);
                    self.advance_subdivided(
                        &mut work,
                        &prev,
                        t - h,
                        h,
                        nv,
                        n,
                        &mut x,
                        &mut cap_hist,
                        &mut c_step,
                        &mut scratch,
                        residual,
                    )?;
                }
                Err(e) => return Err(e),
            }
            times.push(t);
            states.push(x[..nv].to_vec());
        }
        Ok(TranResult { times, states })
    }

    /// Retries the interval `[t0, t0 + h]` as `2^m` sub-steps of equal
    /// width, doubling the subdivision until the whole interval converges
    /// (up to 32 sub-steps). `x` must hold the state at `t0` on entry;
    /// holds the state at `t0 + h` on success. `cap_hist` is only advanced
    /// on success.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn advance_subdivided(
        &self,
        work: &mut Circuit,
        prev: &[f64],
        t0: f64,
        h: f64,
        nv: usize,
        n: usize,
        x: &mut [f64],
        cap_hist: &mut [f64],
        c_step: &mut [f64],
        scratch: &mut Scratch,
        full_step_residual: f64,
    ) -> Result<(), CircuitError> {
        let x0: Vec<f64> = x.to_vec();
        for m in 1..=5u32 {
            let sub = 1usize << m;
            let hs = h / sub as f64;
            let base_s = build_base(work, n, nv, hs, self.integrator);
            x.copy_from_slice(&x0);
            let mut prev_s = prev.to_vec();
            let mut hist_s = cap_hist.to_vec();
            let mut ok = true;
            for j in 1..=sub {
                let ts = t0 + j as f64 * hs;
                for (idx, w) in &self.drives {
                    work.set_vsource(*idx, w.eval(ts));
                }
                build_step_consts(work, &prev_s, &hist_s, hs, self.integrator, nv, c_step);
                if self
                    .nr_solve_step(work, &base_s, c_step, x, nv, scratch)
                    .is_err()
                {
                    ok = false;
                    break;
                }
                if self.integrator == Integrator::Trapezoidal {
                    update_cap_hist(work, x, &prev_s, hs, &mut hist_s);
                }
                prev_s.copy_from_slice(&x[..nv]);
            }
            if ok {
                cap_hist.copy_from_slice(&hist_s);
                return Ok(());
            }
        }
        Err(CircuitError::NoConvergence {
            residual: full_step_residual,
            iterations: self.max_iterations,
        })
    }

    /// One backward-Euler / trapezoidal step: NR with clamped updates and a
    /// backtracking line search. `x` is the previous state on entry and the
    /// converged state on success (clobbered on failure). The residual is
    ///   f(x) = base·x + c_step + (FET currents)
    /// and the Jacobian is base + (FET linearizations); only the FET part
    /// is re-stamped per iteration. The Newton step is clamped to
    /// `step_clamp` per voltage, then backtracked on the residual norm:
    /// full steps whenever they contract, halved when they would overshoot.
    /// Trial residuals reuse the constant stamps and need no factorization,
    /// so the search is cheap.
    fn nr_solve_step(
        &self,
        work: &Circuit,
        base: &DenseMatrix,
        c_step: &[f64],
        x: &mut [f64],
        nv: usize,
        s: &mut Scratch,
    ) -> Result<(), CircuitError> {
        let mut converged = false;
        let mut last_res = f64::INFINITY;
        for it in 0..self.max_iterations {
            s.jac.copy_from(base);
            base.mul_vec_into(x, &mut s.f);
            for (fi, ci) in s.f.iter_mut().zip(c_step) {
                *fi += *ci;
            }
            for e in work.elements() {
                if let Element::Fet {
                    d,
                    g,
                    s: src,
                    model,
                } = e
                {
                    stamp_fet(x, *d, *g, *src, model.as_ref(), &mut s.jac, &mut s.f);
                }
            }
            // Residual-based acceptance: the KCL error is already far
            // below anything that matters.
            let res_full = s.f.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            last_res = s.f.iter().take(nv).fold(0.0f64, |m, v| m.max(v.abs()));
            if it > 0 && res_full < 1.0e-10 {
                converged = true;
                break;
            }
            for (r, fv) in s.rhs.iter_mut().zip(&s.f) {
                *r = -fv;
            }
            let pivots = s.jac.lu_factor_in_place()?;
            s.jac.lu_solve(&pivots, &mut s.rhs);
            for (i, d) in s.dx.iter_mut().enumerate() {
                *d = if i < nv {
                    s.rhs[i].clamp(-self.step_clamp, self.step_clamp)
                } else {
                    s.rhs[i]
                };
            }
            // Backtracking: accept the first scale that reduces the
            // residual; if none does (residual at its floor for this
            // iterate), keep the best trial seen to stay in motion.
            let mut scale = 1.0f64;
            let mut best_scale = 1.0f64;
            let mut best_res = f64::INFINITY;
            for _half in 0..8 {
                for (xt, (xi, di)) in s.x_try.iter_mut().zip(x.iter().zip(s.dx.iter())) {
                    *xt = xi + scale * di;
                }
                let res_try = residual_at(work, base, c_step, &s.x_try, &mut s.f, &mut s.jac);
                if res_try < best_res {
                    best_res = res_try;
                    best_scale = scale;
                }
                if res_try < res_full {
                    break;
                }
                scale *= 0.5;
            }
            if best_scale != scale {
                for (xt, (xi, di)) in s.x_try.iter_mut().zip(x.iter().zip(s.dx.iter())) {
                    *xt = xi + best_scale * di;
                }
            }
            x.copy_from_slice(&s.x_try);
            last_res = best_res;
            let dv =
                s.dx.iter()
                    .take(nv)
                    .fold(0.0f64, |m, d| m.max((best_scale * d).abs()));
            if dv < self.v_tol && best_res < 1.0e-9 {
                converged = true;
                break;
            }
        }
        // Loose final check, as in the DC solver: organic circuits push
        // nanoamp-scale currents, where the strict threshold can stall
        // a whisker high with the step already physically settled.
        if converged || last_res < 1.0e-9 {
            Ok(())
        } else {
            Err(CircuitError::NoConvergence {
                residual: last_res,
                iterations: self.max_iterations,
            })
        }
    }
}

/// NR per-iteration work buffers, allocated once per transient run.
pub(crate) struct Scratch {
    jac: DenseMatrix,
    f: Vec<f64>,
    rhs: Vec<f64>,
    dx: Vec<f64>,
    x_try: Vec<f64>,
}

impl Scratch {
    pub(crate) fn new(n: usize) -> Self {
        Self {
            jac: DenseMatrix::zeros(n, n),
            f: vec![0.0; n],
            rhs: vec![0.0; n],
            dx: vec![0.0; n],
            x_try: vec![0.0; n],
        }
    }
}

/// Advances the trapezoidal companion history after a converged step of
/// width `h`: i_n = 2C/h · Δv − i_{n−1}.
pub(crate) fn update_cap_hist(
    work: &Circuit,
    x: &[f64],
    prev: &[f64],
    h: f64,
    cap_hist: &mut [f64],
) {
    let mut cap_idx = 0usize;
    for e in work.elements() {
        if let Element::Capacitor { a, b, farads } = e {
            let dv = (node_v(x, *a) - node_v(x, *b)) - (node_v(prev, *a) - node_v(prev, *b));
            cap_hist[cap_idx] = 2.0 * farads / h * dv - cap_hist[cap_idx];
            cap_idx += 1;
        }
    }
}

pub(crate) fn node_v(x: &[f64], id: NodeId) -> f64 {
    if id.index() == 0 {
        0.0
    } else {
        x[id.index() - 1]
    }
}

/// Evaluates the transient residual at `x` (max |error| over ALL rows —
/// node KCL and source branch equations; the latter carry a step's new
/// source values, so a node-only norm would be blind to the very update
/// the step must make) without factoring anything: the constant part comes
/// from `base`/`c_step`, only FET currents are stamped fresh. `f` and
/// `jac_scratch` are clobbered.
fn residual_at(
    work: &Circuit,
    base: &DenseMatrix,
    c_step: &[f64],
    x: &[f64],
    f: &mut [f64],
    jac_scratch: &mut DenseMatrix,
) -> f64 {
    base.mul_vec_into(x, f);
    for (fi, ci) in f.iter_mut().zip(c_step) {
        *fi += *ci;
    }
    for e in work.elements() {
        if let Element::Fet { d, g, s, model } = e {
            stamp_fet(x, *d, *g, *s, model.as_ref(), jac_scratch, f);
        }
    }
    f.iter().fold(0.0f64, |m, v| m.max(v.abs()))
}

/// Companion-model conductance of a capacitor at step size `h`.
fn companion_g(farads: f64, h: f64, integ: Integrator) -> f64 {
    match integ {
        Integrator::BackwardEuler => farads / h,
        Integrator::Trapezoidal => 2.0 * farads / h,
    }
}

/// Assembles the constant part of the transient Jacobian: gmin, resistors,
/// voltage-source incidence, and capacitor companion conductances. Valid
/// for the whole run — topology and step size never change mid-transient.
pub(crate) fn build_base(
    work: &Circuit,
    n: usize,
    nv: usize,
    h: f64,
    integ: Integrator,
) -> DenseMatrix {
    let ix = |id: NodeId| -> Option<usize> { id.index().checked_sub(1) };
    let mut base = DenseMatrix::zeros(n, n);
    for i in 0..nv {
        base.add(i, i, GMIN);
    }
    let mut src_idx = 0usize;
    for e in work.elements() {
        match e {
            Element::Resistor { a, b, ohms } => {
                let g = 1.0 / ohms;
                if let Some(ra) = ix(*a) {
                    base.add(ra, ra, g);
                    if let Some(rb) = ix(*b) {
                        base.add(ra, rb, -g);
                    }
                }
                if let Some(rb) = ix(*b) {
                    base.add(rb, rb, g);
                    if let Some(ra) = ix(*a) {
                        base.add(rb, ra, -g);
                    }
                }
            }
            Element::Capacitor { a, b, farads } => {
                let g = companion_g(*farads, h, integ);
                if let Some(ra) = ix(*a) {
                    base.add(ra, ra, g);
                    if let Some(rb) = ix(*b) {
                        base.add(ra, rb, -g);
                    }
                }
                if let Some(rb) = ix(*b) {
                    base.add(rb, rb, g);
                    if let Some(ra) = ix(*a) {
                        base.add(rb, ra, -g);
                    }
                }
            }
            Element::VSource { pos, neg, .. } => {
                let row = nv + src_idx;
                if let Some(rp) = ix(*pos) {
                    base.add(row, rp, 1.0);
                    base.add(rp, row, 1.0);
                }
                if let Some(rn) = ix(*neg) {
                    base.add(row, rn, -1.0);
                    base.add(rn, row, -1.0);
                }
                src_idx += 1;
            }
            Element::Fet { .. } => {}
        }
    }
    base
}

/// Assembles the residual terms that are constant across one step's NR
/// iterations: `-V(t)` on source branch rows and the capacitor companion
/// history currents:
///   BE:   i = g·(v − v_prev)            → constant part −g·v_prev
///   TRAP: i = g·(v − v_prev) − i_prev   → constant part −g·v_prev − i_prev
pub(crate) fn build_step_consts(
    work: &Circuit,
    prev: &[f64],
    cap_hist: &[f64],
    h: f64,
    integ: Integrator,
    nv: usize,
    c: &mut [f64],
) {
    let ix = |id: NodeId| -> Option<usize> { id.index().checked_sub(1) };
    c.fill(0.0);
    let mut src_idx = 0usize;
    let mut cap_idx = 0usize;
    for e in work.elements() {
        match e {
            Element::VSource { volts, .. } => {
                c[nv + src_idx] = -volts;
                src_idx += 1;
            }
            Element::Capacitor { a, b, farads } => {
                let g = companion_g(*farads, h, integ);
                let hist = match integ {
                    Integrator::BackwardEuler => 0.0,
                    Integrator::Trapezoidal => cap_hist[cap_idx],
                };
                let k = -g * (node_v(prev, *a) - node_v(prev, *b)) - hist;
                if let Some(ra) = ix(*a) {
                    c[ra] += k;
                }
                if let Some(rb) = ix(*b) {
                    c[rb] -= k;
                }
                cap_idx += 1;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Circuit;

    #[test]
    fn waveform_ramp_interpolates() {
        let w = Waveform::ramp(0.0, 5.0, 1.0, 2.0);
        assert_eq!(w.eval(0.0), 0.0);
        assert_eq!(w.eval(1.0), 0.0);
        assert!((w.eval(2.0) - 2.5).abs() < 1e-12);
        assert_eq!(w.eval(10.0), 5.0);
    }

    #[test]
    fn rc_charging_matches_analytic() {
        // R = 1 kΩ, C = 1 µF, step from 0 → 1 V: τ = 1 ms.
        let mut c = Circuit::new();
        let a = c.node("a");
        let out = c.node("out");
        let s = c.vsource(a, Circuit::GND, 0.0);
        c.resistor(a, out, 1.0e3);
        c.capacitor(out, Circuit::GND, 1.0e-6);
        let res = TranSolver::new(1.0e-5, 5.0e-3)
            .drive(s, Waveform::ramp(0.0, 1.0, 0.0, 1.0e-9))
            .run(&c)
            .unwrap();
        let wf = res.node_waveform(out);
        // At t = 1 ms the analytic value is 1 - e^-1 ≈ 0.632.
        let (_, v_tau) = wf
            .iter()
            .min_by(|x, y| {
                (x.0 - 1.0e-3)
                    .abs()
                    .partial_cmp(&(y.0 - 1.0e-3).abs())
                    .unwrap()
            })
            .copied()
            .unwrap();
        assert!((v_tau - 0.632).abs() < 0.02, "v(τ) = {v_tau}");
        // Fully settled by 5τ.
        assert!((wf.last().unwrap().1 - 1.0).abs() < 0.02);
    }

    #[test]
    fn dc_waveform_holds_initial_op() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let m = c.node("m");
        let s = c.vsource(a, Circuit::GND, 4.0);
        c.resistor(a, m, 1.0e3);
        c.resistor(m, Circuit::GND, 1.0e3);
        let res = TranSolver::new(1.0e-6, 1.0e-5)
            .drive(s, Waveform::Dc(4.0))
            .run(&c)
            .unwrap();
        for i in 0..res.len() {
            assert!((res.voltage_at(i, m) - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "tstep must be positive")]
    fn rejects_bad_time_axis() {
        let _ = TranSolver::new(0.0, 1.0);
    }

    #[test]
    fn split_stamps_match_full_stamping() {
        // The fast path computes f = base·x + c_step + FET stamps with the
        // constant part assembled once; it must agree with stamping
        // everything from scratch (the pre-split formulation) on a circuit
        // exercising every element kind.
        use crate::dc::{stamp_fet, stamp_static};
        use bdc_device::{SiliconMosModel, SiliconMosParams};
        use std::sync::Arc;

        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource(vdd, Circuit::GND, 1.0);
        c.vsource(inp, Circuit::GND, 0.5);
        c.resistor(vdd, out, 10.0e3);
        c.capacitor(out, Circuit::GND, 2.0e-15);
        c.capacitor(inp, out, 0.5e-15);
        let model = Arc::new(SiliconMosModel::new(SiliconMosParams::nmos_45()));
        c.fet(out, inp, Circuit::GND, model);
        let nv = c.node_count() - 1;
        let n = nv + c.vsource_count();
        let h = 1.0e-12;
        let x: Vec<f64> = (0..n).map(|i| 0.05 + 0.11 * i as f64).collect();
        let prev: Vec<f64> = (0..nv).map(|i| 0.6 - 0.07 * i as f64).collect();
        let cap_hist = [3.0e-7, -1.5e-7];

        for integ in [Integrator::BackwardEuler, Integrator::Trapezoidal] {
            // Fast path.
            let base = build_base(&c, n, nv, h, integ);
            let mut c_step = vec![0.0; n];
            build_step_consts(&c, &prev, &cap_hist, h, integ, nv, &mut c_step);
            let mut jac_fast = DenseMatrix::zeros(n, n);
            jac_fast.copy_from(&base);
            let mut f_fast = vec![0.0; n];
            base.mul_vec_into(&x, &mut f_fast);
            for (fi, ci) in f_fast.iter_mut().zip(&c_step) {
                *fi += *ci;
            }
            for e in c.elements() {
                if let Element::Fet { d, g, s, model } = e {
                    stamp_fet(&x, *d, *g, *s, model.as_ref(), &mut jac_fast, &mut f_fast);
                }
            }
            // Reference: stamp everything at once, companion models fused.
            let mut jac_ref = DenseMatrix::zeros(n, n);
            let mut f_ref = vec![0.0; n];
            stamp_static(&c, &x, GMIN, &mut jac_ref, &mut f_ref);
            let mut cap_idx = 0usize;
            for e in c.elements() {
                if let Element::Capacitor { a, b, farads } = e {
                    let dv =
                        (node_v(&x, *a) - node_v(&x, *b)) - (node_v(&prev, *a) - node_v(&prev, *b));
                    let g = companion_g(*farads, h, integ);
                    let i = match integ {
                        Integrator::BackwardEuler => g * dv,
                        Integrator::Trapezoidal => g * dv - cap_hist[cap_idx],
                    };
                    if let Some(ra) = a.index().checked_sub(1) {
                        f_ref[ra] += i;
                        jac_ref.add(ra, ra, g);
                        if let Some(rb) = b.index().checked_sub(1) {
                            jac_ref.add(ra, rb, -g);
                        }
                    }
                    if let Some(rb) = b.index().checked_sub(1) {
                        f_ref[rb] -= i;
                        jac_ref.add(rb, rb, g);
                        if let Some(ra) = a.index().checked_sub(1) {
                            jac_ref.add(rb, ra, -g);
                        }
                    }
                    cap_idx += 1;
                }
            }
            for r in 0..n {
                let scale = f_ref[r].abs().max(1.0);
                assert!(
                    (f_fast[r] - f_ref[r]).abs() < 1e-9 * scale,
                    "{integ:?} residual row {r}: {} vs {}",
                    f_fast[r],
                    f_ref[r]
                );
                for col in 0..n {
                    let (a, b) = (jac_fast.get(r, col), jac_ref.get(r, col));
                    assert!(
                        (a - b).abs() < 1e-9 * b.abs().max(1.0),
                        "{integ:?} jac ({r},{col}): {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn with_initial_state_matches_internal_dc_solve_bitwise() {
        // Seeding the transient with an externally solved operating point
        // must reproduce the solve-internally run exactly — this is the
        // contract that lets characterization reuse one DC solve across a
        // whole slew × load grid.
        let mut c = Circuit::new();
        let a = c.node("a");
        let out = c.node("out");
        let s = c.vsource(a, Circuit::GND, 0.0);
        c.resistor(a, out, 1.0e3);
        c.capacitor(out, Circuit::GND, 1.0e-6);
        let drive = Waveform::ramp(0.2, 1.0, 1.0e-4, 2.0e-4);
        let solver = TranSolver::new(1.0e-5, 1.0e-3).drive(s, drive.clone());

        let internal = solver.clone().run(&c).unwrap();
        let mut at_t0 = c.clone();
        at_t0.set_vsource(s, drive.eval(0.0));
        let op = DcSolver::new().solve(&at_t0).unwrap();
        let seeded = solver.with_initial_state(&op).run(&c).unwrap();

        assert_eq!(internal.times(), seeded.times());
        for i in 0..internal.len() {
            assert_eq!(
                internal.voltage_at(i, out),
                seeded.voltage_at(i, out),
                "step {i}"
            );
            assert_eq!(internal.voltage_at(i, a), seeded.voltage_at(i, a));
        }
    }

    #[test]
    fn trapezoidal_is_more_accurate_than_be_at_coarse_steps() {
        // RC driven by a smooth ramp (consistent zero initial current):
        // v(t) = k·(t − τ·(1 − e^{−t/τ})) during the ramp. At ~20 steps per
        // time constant the 2nd-order method must land closer.
        let r = 1.0e3;
        let cap = 1.0e-6;
        let tau = r * cap; // 1 ms
        let k = 1.0 / 0.5e-3; // 0→1 V over 0.5 ms
        let mut c = Circuit::new();
        let a = c.node("a");
        let out = c.node("out");
        let s = c.vsource(a, Circuit::GND, 0.0);
        c.resistor(a, out, r);
        c.capacitor(out, Circuit::GND, cap);
        let drive = Waveform::ramp(0.0, 1.0, 0.0, 0.5e-3);
        let t_meas = 4.5e-4;
        let expect = k * (t_meas - tau * (1.0 - (-t_meas / tau).exp()));
        let run = |integ: Integrator| {
            let res = TranSolver::new(5.0e-5, 4.5e-4)
                .with_integrator(integ)
                .drive(s, drive.clone())
                .run(&c)
                .unwrap();
            let wf = res.node_waveform(out);
            wf.last().unwrap().1
        };
        let be_err = (run(Integrator::BackwardEuler) - expect).abs();
        let trap_err = (run(Integrator::Trapezoidal) - expect).abs();
        assert!(
            trap_err < 0.25 * be_err,
            "trap err {trap_err:.5} should beat BE err {be_err:.5}"
        );
    }
}
