//! Transient analysis with backward-Euler / trapezoidal companion models.

use crate::dc::{stamp_static, DcSolver};

use crate::error::CircuitError;
use crate::linalg::DenseMatrix;
use crate::netlist::{Circuit, Element, NodeId};

/// Integration method for the capacitor companion models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// First-order, L-stable — the robust default for stiff cell circuits.
    #[default]
    BackwardEuler,
    /// Second-order trapezoidal rule — more accurate per step on smooth
    /// waveforms (may ring on discontinuities, as in real SPICE).
    Trapezoidal,
}

/// Time-varying stimulus for a voltage source.
#[derive(Debug, Clone)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// Piecewise-linear `(time, value)` points; clamps outside the range.
    Pwl(Vec<(f64, f64)>),
}

impl Waveform {
    /// A single rising or falling ramp from `v0` to `v1` starting at
    /// `t_start`, completing over `t_ramp` seconds.
    pub fn ramp(v0: f64, v1: f64, t_start: f64, t_ramp: f64) -> Self {
        Waveform::Pwl(vec![(0.0, v0), (t_start, v0), (t_start + t_ramp, v1)])
    }

    /// Value at time `t`.
    pub fn eval(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pwl(pts) => {
                if pts.is_empty() {
                    return 0.0;
                }
                if t <= pts[0].0 {
                    return pts[0].1;
                }
                for w in pts.windows(2) {
                    let ((t0, v0), (t1, v1)) = (w[0], w[1]);
                    if t <= t1 {
                        if t1 - t0 < 1e-300 {
                            return v1;
                        }
                        let f = (t - t0) / (t1 - t0);
                        return v0 + f * (v1 - v0);
                    }
                }
                pts.last().unwrap().1
            }
        }
    }
}

/// Result of a transient run.
#[derive(Debug, Clone)]
pub struct TranResult {
    times: Vec<f64>,
    /// Per step, the non-ground node voltages.
    states: Vec<Vec<f64>>,
}

impl TranResult {
    /// The simulated time points (s).
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Waveform of one node as `(t, v)` pairs.
    pub fn node_waveform(&self, node: NodeId) -> Vec<(f64, f64)> {
        let idx = node.index();
        self.times
            .iter()
            .zip(&self.states)
            .map(|(t, s)| (*t, if idx == 0 { 0.0 } else { s[idx - 1] }))
            .collect()
    }

    /// Voltage of `node` at step `i`.
    pub fn voltage_at(&self, i: usize, node: NodeId) -> f64 {
        if node.index() == 0 {
            0.0
        } else {
            self.states[i][node.index() - 1]
        }
    }

    /// Number of stored steps.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when no steps were stored.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }
}

/// Fixed-step transient solver.
///
/// The initial condition is the DC operating point with all driven sources
/// at their `t = 0` values.
#[derive(Debug, Clone)]
pub struct TranSolver {
    tstep: f64,
    tstop: f64,
    drives: Vec<(usize, Waveform)>,
    /// NR iteration limit per time step.
    pub max_iterations: usize,
    /// Voltage convergence tolerance per step (V).
    pub v_tol: f64,
    /// Largest voltage change per NR iteration (V); iterations past a third
    /// of the budget are progressively damped below this to force stiff
    /// points to converge.
    pub step_clamp: f64,
    /// Capacitor integration method.
    pub integrator: Integrator,
}

impl TranSolver {
    /// Creates a solver with time step `tstep` and end time `tstop`.
    ///
    /// # Panics
    /// Panics if either is non-positive or non-finite.
    pub fn new(tstep: f64, tstop: f64) -> Self {
        assert!(tstep > 0.0 && tstep.is_finite(), "tstep must be positive");
        assert!(tstop > 0.0 && tstop.is_finite(), "tstop must be positive");
        TranSolver {
            tstep,
            tstop,
            drives: Vec::new(),
            max_iterations: 150,
            v_tol: 1.0e-7,
            step_clamp: 5.0,
            integrator: Integrator::default(),
        }
    }

    /// Attaches a waveform to voltage source `src_idx`.
    pub fn drive(mut self, src_idx: usize, waveform: Waveform) -> Self {
        self.drives.push((src_idx, waveform));
        self
    }

    /// Sets the per-iteration voltage step clamp (useful for low-voltage
    /// circuits where the default 5 V allows oscillatory overshoot).
    pub fn with_step_clamp(mut self, clamp: f64) -> Self {
        assert!(clamp > 0.0, "step clamp must be positive");
        self.step_clamp = clamp;
        self
    }

    /// Selects the capacitor integration method.
    pub fn with_integrator(mut self, integrator: Integrator) -> Self {
        self.integrator = integrator;
        self
    }

    /// Runs the transient analysis.
    ///
    /// # Errors
    /// Propagates DC (initial condition) and per-step NR failures.
    pub fn run(&self, circuit: &Circuit) -> Result<TranResult, CircuitError> {
        let mut work = circuit.clone();
        // Initial condition: sources at t = 0.
        for (idx, w) in &self.drives {
            work.set_vsource(*idx, w.eval(0.0));
        }
        let op0 = DcSolver::new().solve(&work)?;
        let nv = work.node_count() - 1;
        let ns = work.vsource_count();
        let n = nv + ns;
        let mut x: Vec<f64> = op0.node_voltages().to_vec();
        x.resize(n, 0.0);

        let steps = (self.tstop / self.tstep).ceil() as usize;
        let mut times = Vec::with_capacity(steps + 1);
        let mut states = Vec::with_capacity(steps + 1);
        times.push(0.0);
        states.push(x[..nv].to_vec());

        let mut jac = DenseMatrix::zeros(n, n);
        let mut f = vec![0.0; n];
        let h = self.tstep;
        // Trapezoidal companion history: previous capacitor currents.
        let n_caps = work
            .elements()
            .iter()
            .filter(|e| matches!(e, Element::Capacitor { .. }))
            .count();
        let mut cap_hist = vec![0.0f64; n_caps];
        for k in 1..=steps {
            let t = k as f64 * h;
            for (idx, w) in &self.drives {
                work.set_vsource(*idx, w.eval(t));
            }
            let prev = states.last().unwrap().clone();
            // NR on the BE-discretized system.
            let mut converged = false;
            for it in 0..self.max_iterations {
                jac.clear();
                f.fill(0.0);
                stamp_static(&work, &x, 1.0e-12, &mut jac, &mut f);
                // Capacitor companion models:
                //   BE:   i = (C/h)·(v − v_prev)
                //   TRAP: i = (2C/h)·(v − v_prev) − i_prev
                let mut cap_idx = 0usize;
                for e in work.elements() {
                    if let Element::Capacitor { a, b, farads } = e {
                        let va = node_v(&x, *a);
                        let vb = node_v(&x, *b);
                        let va_p = node_v(&prev, *a);
                        let vb_p = node_v(&prev, *b);
                        let dv = (va - vb) - (va_p - vb_p);
                        let (g, i) = match self.integrator {
                            Integrator::BackwardEuler => {
                                let g = farads / h;
                                (g, g * dv)
                            }
                            Integrator::Trapezoidal => {
                                let g = 2.0 * farads / h;
                                (g, g * dv - cap_hist[cap_idx])
                            }
                        };
                        if let Some(ra) = a.index().checked_sub(1) {
                            f[ra] += i;
                            jac.add(ra, ra, g);
                            if let Some(rb) = b.index().checked_sub(1) {
                                jac.add(ra, rb, -g);
                            }
                        }
                        if let Some(rb) = b.index().checked_sub(1) {
                            f[rb] -= i;
                            jac.add(rb, rb, g);
                            if let Some(ra) = a.index().checked_sub(1) {
                                jac.add(rb, ra, -g);
                            }
                        }
                        cap_idx += 1;
                    }
                }
                // Residual-based acceptance: the KCL error is already far
                // below anything that matters.
                let res = f.iter().take(nv).fold(0.0f64, |m, v| m.max(v.abs()));
                if it > 0 && res < 1.0e-10 {
                    converged = true;
                    break;
                }
                let mut rhs: Vec<f64> = f.iter().map(|v| -v).collect();
                let mut j = jac.clone();
                j.solve_in_place(&mut rhs)?;
                // Damp progressively once the iteration count grows: stiff
                // points (series-stack internal nodes) otherwise oscillate.
                let damp = if it < self.max_iterations / 3 {
                    1.0
                } else {
                    1.0 / (1.0 + (it - self.max_iterations / 3) as f64 * 0.2)
                };
                let clamp = self.step_clamp * damp;
                let mut dv = 0.0f64;
                for (i, xi) in x.iter_mut().enumerate() {
                    let d = if i < nv {
                        (rhs[i] * damp).clamp(-clamp, clamp)
                    } else {
                        rhs[i]
                    };
                    if i < nv {
                        dv = dv.max(d.abs());
                    }
                    *xi += d;
                }
                if dv < self.v_tol {
                    converged = true;
                    break;
                }
            }
            if !converged {
                return Err(CircuitError::NoConvergence {
                    residual: f.iter().take(nv).fold(0.0f64, |m, v| m.max(v.abs())),
                    iterations: self.max_iterations,
                });
            }
            // Advance the trapezoidal current history.
            if self.integrator == Integrator::Trapezoidal {
                let mut cap_idx = 0usize;
                for e in work.elements() {
                    if let Element::Capacitor { a, b, farads } = e {
                        let dv = (node_v(&x, *a) - node_v(&x, *b))
                            - (node_v(&prev, *a) - node_v(&prev, *b));
                        cap_hist[cap_idx] = 2.0 * farads / h * dv - cap_hist[cap_idx];
                        cap_idx += 1;
                    }
                }
            }
            times.push(t);
            states.push(x[..nv].to_vec());
        }
        Ok(TranResult { times, states })
    }
}

fn node_v(x: &[f64], id: NodeId) -> f64 {
    if id.index() == 0 {
        0.0
    } else {
        x[id.index() - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Circuit;

    #[test]
    fn waveform_ramp_interpolates() {
        let w = Waveform::ramp(0.0, 5.0, 1.0, 2.0);
        assert_eq!(w.eval(0.0), 0.0);
        assert_eq!(w.eval(1.0), 0.0);
        assert!((w.eval(2.0) - 2.5).abs() < 1e-12);
        assert_eq!(w.eval(10.0), 5.0);
    }

    #[test]
    fn rc_charging_matches_analytic() {
        // R = 1 kΩ, C = 1 µF, step from 0 → 1 V: τ = 1 ms.
        let mut c = Circuit::new();
        let a = c.node("a");
        let out = c.node("out");
        let s = c.vsource(a, Circuit::GND, 0.0);
        c.resistor(a, out, 1.0e3);
        c.capacitor(out, Circuit::GND, 1.0e-6);
        let res = TranSolver::new(1.0e-5, 5.0e-3)
            .drive(s, Waveform::ramp(0.0, 1.0, 0.0, 1.0e-9))
            .run(&c)
            .unwrap();
        let wf = res.node_waveform(out);
        // At t = 1 ms the analytic value is 1 - e^-1 ≈ 0.632.
        let (_, v_tau) = wf
            .iter()
            .min_by(|x, y| {
                (x.0 - 1.0e-3)
                    .abs()
                    .partial_cmp(&(y.0 - 1.0e-3).abs())
                    .unwrap()
            })
            .copied()
            .unwrap();
        assert!((v_tau - 0.632).abs() < 0.02, "v(τ) = {v_tau}");
        // Fully settled by 5τ.
        assert!((wf.last().unwrap().1 - 1.0).abs() < 0.02);
    }

    #[test]
    fn dc_waveform_holds_initial_op() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let m = c.node("m");
        let s = c.vsource(a, Circuit::GND, 4.0);
        c.resistor(a, m, 1.0e3);
        c.resistor(m, Circuit::GND, 1.0e3);
        let res = TranSolver::new(1.0e-6, 1.0e-5)
            .drive(s, Waveform::Dc(4.0))
            .run(&c)
            .unwrap();
        for i in 0..res.len() {
            assert!((res.voltage_at(i, m) - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "tstep must be positive")]
    fn rejects_bad_time_axis() {
        let _ = TranSolver::new(0.0, 1.0);
    }

    #[test]
    fn trapezoidal_is_more_accurate_than_be_at_coarse_steps() {
        // RC driven by a smooth ramp (consistent zero initial current):
        // v(t) = k·(t − τ·(1 − e^{−t/τ})) during the ramp. At ~20 steps per
        // time constant the 2nd-order method must land closer.
        let r = 1.0e3;
        let cap = 1.0e-6;
        let tau = r * cap; // 1 ms
        let k = 1.0 / 0.5e-3; // 0→1 V over 0.5 ms
        let mut c = Circuit::new();
        let a = c.node("a");
        let out = c.node("out");
        let s = c.vsource(a, Circuit::GND, 0.0);
        c.resistor(a, out, r);
        c.capacitor(out, Circuit::GND, cap);
        let drive = Waveform::ramp(0.0, 1.0, 0.0, 0.5e-3);
        let t_meas = 4.5e-4;
        let expect = k * (t_meas - tau * (1.0 - (-t_meas / tau).exp()));
        let run = |integ: Integrator| {
            let res = TranSolver::new(5.0e-5, 4.5e-4)
                .with_integrator(integ)
                .drive(s, drive.clone())
                .run(&c)
                .unwrap();
            let wf = res.node_waveform(out);
            wf.last().unwrap().1
        };
        let be_err = (run(Integrator::BackwardEuler) - expect).abs();
        let trap_err = (run(Integrator::Trapezoidal) - expect).abs();
        assert!(
            trap_err < 0.25 * be_err,
            "trap err {trap_err:.5} should beat BE err {be_err:.5}"
        );
    }
}
